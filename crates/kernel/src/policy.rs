//! Pluggable processor-allocation policies: the *policy* half of the
//! allocator's policy/mechanism split.
//!
//! The paper's point (§4.1–§4.2) is that processor allocation is a policy
//! layered on a fixed mechanism — the kernel moves processors between
//! address spaces (preempt, release, grant, notify), while *which* space
//! deserves *how many* processors is a separable decision. This module
//! holds that decision. A policy sees only an [`AllocView`] — per-space
//! demand, priority, and current assignment plus per-CPU last-owner facts
//! — and answers two questions:
//!
//! 1. [`AllocPolicy::targets`]: how many processors should each space
//!    hold right now?
//! 2. [`AllocPolicy::pick_cpu`]: given several free processors, which one
//!    should a particular space receive?
//!
//! The mechanism in [`crate::alloc`] does the rest (victim selection,
//! deferred preemption at segment boundaries, §3.1 notifications).
//!
//! # Determinism rules for policy authors
//!
//! Policies run inside a deterministic single-threaded simulation whose
//! results must be byte-identical across runs and across host-parallel
//! sweep workers. A policy must therefore be a *pure function of its
//! view*: no interior mutability, no host randomness, no clocks, no
//! iteration over unordered containers. Ties must be broken by stable
//! criteria (lowest space index, lowest CPU index). The only sanctioned
//! source of time-variation is [`AllocView::rotation`], which the kernel
//! bumps once per quantum while a remainder exists.

use sa_sim::SimDuration;
use std::fmt;
use std::str::FromStr;

/// Read-only per-space facts a policy may consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceDemand {
    /// Current processor demand (0 for unstarted or finished spaces).
    /// Kernel-direct spaces' demand is read from internal kernel
    /// structures; SA spaces' demand comes from their Table 3 hints.
    pub demand: u32,
    /// Allocation priority: higher wins (kernel daemons sit above all
    /// application spaces).
    pub priority: u8,
    /// Processors currently assigned to the space.
    pub assigned: u32,
}

/// A read-only snapshot of the allocator-relevant kernel state.
pub struct AllocView<'a> {
    /// Per-space facts, indexed by space.
    pub spaces: &'a [SpaceDemand],
    /// Total processors in the machine.
    pub total_cpus: u32,
    /// Rotation counter for remainder processors: bumped once per quantum
    /// while the division leaves a remainder (§4.1 time-slicing).
    pub rotation: u32,
    /// Per-CPU: the space that last ran on this processor, if any
    /// (§4.2's cache-affinity consideration).
    pub last_space: &'a [Option<u32>],
}

/// A processor-allocation policy.
///
/// `Send` because whole simulations are fanned across host threads by the
/// sweep harness; policies are stateless values, never shared.
pub trait AllocPolicy: Send {
    /// Stable policy name (CLI `--alloc=` value).
    fn name(&self) -> &'static str;

    /// The target allocation: how many processors each space should hold.
    /// Also reports whether the division left a remainder, so the kernel
    /// knows to keep the rotation timer running.
    ///
    /// Every policy must satisfy the §4.1 invariants (proptested in
    /// `tests/policy_invariants.rs`): `targets[i] <= spaces[i].demand`,
    /// and `sum(targets) == min(total_cpus, sum(demands))` — no processor
    /// idles while any space has unmet demand, and allocations never
    /// exceed the machine.
    fn targets(&self, view: &AllocView<'_>) -> (Vec<u32>, bool);

    /// Given the free processors (`free` is non-empty, ascending), which
    /// one should `space` receive? Must return a member of `free`.
    fn pick_cpu(&self, _view: &AllocView<'_>, _space: usize, free: &[usize]) -> usize {
        free[0]
    }

    /// Minimum dwell: how long a space must hold a granted processor
    /// before the allocator may pick it as a reallocation or steal
    /// victim. `None` (the default) disables the debounce entirely — the
    /// mechanism takes the exact pre-hysteresis paths, so every policy
    /// without a dwell is byte-identical to before this hook existed.
    /// Voluntary releases (the runtime yields the processor, the space
    /// finishes) are never delayed.
    fn min_dwell(&self) -> Option<SimDuration> {
        None
    }
}

/// The paper's §4.1 policy: priorities strictly dominate, and within a
/// priority level processors are divided evenly, with unused shares
/// redistributed ("if some address spaces do not need all of the
/// processors in their share, those processors are divided evenly among
/// the remainder"). When the division leaves a remainder, the extra
/// processors go to a rotating subset of the claimants.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpaceShareEven;

impl AllocPolicy for SpaceShareEven {
    fn name(&self) -> &'static str {
        "even"
    }

    fn targets(&self, view: &AllocView<'_>) -> (Vec<u32>, bool) {
        let n = view.spaces.len();
        let mut targets = vec![0u32; n];
        let mut has_remainder = false;
        let mut avail = view.total_cpus;
        // Group space indices by priority, descending.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            view.spaces[b]
                .priority
                .cmp(&view.spaces[a].priority)
                .then(a.cmp(&b))
        });
        let mut i = 0;
        while i < order.len() && avail > 0 {
            let prio = view.spaces[order[i]].priority;
            let mut group: Vec<(usize, u32)> = Vec::new();
            while i < order.len() && view.spaces[order[i]].priority == prio {
                let idx = order[i];
                let d = view.spaces[idx].demand;
                if d > 0 {
                    group.push((idx, d));
                }
                i += 1;
            }
            // Waterfall even split within the priority level.
            while !group.is_empty() && avail > 0 {
                let share = avail / group.len() as u32;
                if share == 0 {
                    // Fewer processors than claimants: one each to a
                    // rotating window of claimants (time-slicing the
                    // remainder, deterministically).
                    group.sort_by_key(|&(idx, _)| idx);
                    has_remainder = true;
                    let len = group.len();
                    let start = (view.rotation as usize) % len;
                    for k in 0..(avail as usize) {
                        let (idx, _) = group[(start + k) % len];
                        targets[idx] += 1;
                    }
                    avail = 0;
                    break;
                }
                let satisfied: Vec<(usize, u32)> =
                    group.iter().copied().filter(|&(_, d)| d <= share).collect();
                if satisfied.is_empty() {
                    // Everyone wants at least the share: split evenly and
                    // hand the remainder out one-by-one, rotating who gets
                    // the extras.
                    group.sort_by_key(|&(idx, _)| idx);
                    let rem = (avail - share * group.len() as u32) as usize;
                    if rem > 0 {
                        has_remainder = true;
                    }
                    let len = group.len();
                    let start = (view.rotation as usize) % len;
                    for (k, &(idx, _)) in group.iter().enumerate() {
                        let gets_extra = (k + len - start) % len < rem;
                        targets[idx] += share + u32::from(gets_extra);
                    }
                    avail = 0;
                    break;
                }
                for &(idx, d) in &satisfied {
                    targets[idx] += d;
                    avail -= d;
                }
                group.retain(|&(idx, _)| !satisfied.iter().any(|&(s, _)| s == idx));
            }
        }
        (targets, has_remainder)
    }
}

/// §4.2's cache-affinity note made allocation policy: shares are divided
/// exactly as [`SpaceShareEven`] does, but when several processors are
/// free the space preferentially receives one it ran on most recently
/// ("processors idle in the context of the address space they were last
/// used in, so that they can be reclaimed cheaply").
#[derive(Debug, Clone, Copy, Default)]
pub struct Affinity;

impl AllocPolicy for Affinity {
    fn name(&self) -> &'static str {
        "affinity"
    }

    fn targets(&self, view: &AllocView<'_>) -> (Vec<u32>, bool) {
        SpaceShareEven.targets(view)
    }

    fn pick_cpu(&self, view: &AllocView<'_>, space: usize, free: &[usize]) -> usize {
        free.iter()
            .copied()
            .find(|&cpu| view.last_space.get(cpu).copied().flatten() == Some(space as u32))
            .unwrap_or(free[0])
    }
}

/// The §2.2 pathology as a policy: strict priority with no space-sharing.
/// Each space, in descending priority (ties by index), takes everything
/// it demands before any lower space sees a processor — so a demanding
/// high-priority space starves everyone below it, exactly the behavior
/// the paper's allocator exists to avoid. Useful for reproducing the
/// pathology on demand; never rotates shares.
#[derive(Debug, Clone, Copy, Default)]
pub struct StrictPriority;

impl AllocPolicy for StrictPriority {
    fn name(&self) -> &'static str {
        "strict-priority"
    }

    fn targets(&self, view: &AllocView<'_>) -> (Vec<u32>, bool) {
        let n = view.spaces.len();
        let mut targets = vec![0u32; n];
        let mut avail = view.total_cpus;
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            view.spaces[b]
                .priority
                .cmp(&view.spaces[a].priority)
                .then(a.cmp(&b))
        });
        for idx in order {
            if avail == 0 {
                break;
            }
            let take = view.spaces[idx].demand.min(avail);
            targets[idx] = take;
            avail -= take;
        }
        (targets, false)
    }
}

/// Default minimum dwell for [`Hysteresis`]: long enough to amortize the
/// upcall/stop machinery a reallocation costs (tens of microseconds per
/// move on the Firefly cost model) across many quanta, short enough that
/// the allocator still tracks bursty demand shifts.
pub const DEFAULT_MIN_DWELL: SimDuration = SimDuration::from_millis(50);

/// [`SpaceShareEven`] with reallocation hysteresis: targets are computed
/// exactly as the paper's §4.1 policy does, but a processor granted to a
/// space may not be *taken back* (reallocation victim or steal) until it
/// has dwelled there for [`Hysteresis::min_dwell`]. Bursty multi-space
/// loads otherwise make the allocator churn — a space's demand dips for
/// one quantum, its processor is pulled, and the next burst pays a full
/// grant + upcall round trip to get it back. The debounce trades a
/// bounded amount of allocation lag (at most `min_dwell` per move) for
/// that churn; the dwell ledger and `sa-experiments audit` judge the
/// trade.
#[derive(Debug, Clone, Copy)]
pub struct Hysteresis {
    /// Minimum time a granted processor is held before victim eligibility.
    pub min_dwell: SimDuration,
}

impl Default for Hysteresis {
    fn default() -> Self {
        Hysteresis {
            min_dwell: DEFAULT_MIN_DWELL,
        }
    }
}

impl AllocPolicy for Hysteresis {
    fn name(&self) -> &'static str {
        "hysteresis"
    }

    fn targets(&self, view: &AllocView<'_>) -> (Vec<u32>, bool) {
        SpaceShareEven.targets(view)
    }

    fn min_dwell(&self) -> Option<SimDuration> {
        Some(self.min_dwell)
    }
}

/// Selector for the built-in allocation policies (CLI / config surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocPolicyKind {
    /// [`SpaceShareEven`] — the paper's §4.1 default.
    #[default]
    SpaceShareEven,
    /// [`Affinity`] — §4.2 cache-affinity grant preference.
    Affinity,
    /// [`StrictPriority`] — the §2.2 starvation pathology.
    StrictPriority,
    /// [`Hysteresis`] — §4.1 shares with a minimum-dwell debounce.
    Hysteresis,
}

impl AllocPolicyKind {
    /// Every built-in policy, in CLI listing order.
    pub const ALL: [AllocPolicyKind; 4] = [
        AllocPolicyKind::SpaceShareEven,
        AllocPolicyKind::Affinity,
        AllocPolicyKind::StrictPriority,
        AllocPolicyKind::Hysteresis,
    ];

    /// Stable name (CLI `--alloc=` value).
    pub fn name(self) -> &'static str {
        match self {
            AllocPolicyKind::SpaceShareEven => "even",
            AllocPolicyKind::Affinity => "affinity",
            AllocPolicyKind::StrictPriority => "strict-priority",
            AllocPolicyKind::Hysteresis => "hysteresis",
        }
    }

    /// Instantiates the policy as an enum-dispatched
    /// [`AllocPolicySelect`] (the kernel's storage form: built-in
    /// policies dispatch statically, see the type's docs).
    pub fn build_select(self) -> AllocPolicySelect {
        match self {
            AllocPolicyKind::SpaceShareEven => AllocPolicySelect::Even(SpaceShareEven),
            AllocPolicyKind::Affinity => AllocPolicySelect::Affinity(Affinity),
            AllocPolicyKind::StrictPriority => AllocPolicySelect::StrictPriority(StrictPriority),
            AllocPolicyKind::Hysteresis => AllocPolicySelect::Hysteresis(Hysteresis::default()),
        }
    }

    /// Instantiates the policy as a trait object.
    pub fn build(self) -> Box<dyn AllocPolicy> {
        match self {
            AllocPolicyKind::SpaceShareEven => Box::new(SpaceShareEven),
            AllocPolicyKind::Affinity => Box::new(Affinity),
            AllocPolicyKind::StrictPriority => Box::new(StrictPriority),
            AllocPolicyKind::Hysteresis => Box::new(Hysteresis::default()),
        }
    }
}

impl fmt::Display for AllocPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for AllocPolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "even" | "space-share-even" => Ok(AllocPolicyKind::SpaceShareEven),
            "affinity" => Ok(AllocPolicyKind::Affinity),
            "strict-priority" | "priority" => Ok(AllocPolicyKind::StrictPriority),
            "hysteresis" | "dwell" => Ok(AllocPolicyKind::Hysteresis),
            other => Err(format!(
                "unknown allocation policy '{other}' (expected one of: {})",
                AllocPolicyKind::ALL.map(|k| k.name()).join(", ")
            )),
        }
    }
}

/// Enum-dispatched allocation-policy holder: the kernel's storage form.
///
/// Every kernel configures one of the built-in policies via
/// [`AllocPolicyKind`], so the `Box<dyn AllocPolicy>` the kernel held
/// since the policy/mechanism split was provably monomorphic at every
/// `targets`/`pick_cpu` call; this enum resolves those calls statically
/// while [`Custom`] keeps the open trait for external policies — and
/// doubles as the pre-flattening dynamic-dispatch shape for differential
/// tests.
///
/// [`Custom`]: AllocPolicySelect::Custom
pub enum AllocPolicySelect {
    /// [`SpaceShareEven`], statically dispatched.
    Even(SpaceShareEven),
    /// [`Affinity`], statically dispatched.
    Affinity(Affinity),
    /// [`StrictPriority`], statically dispatched.
    StrictPriority(StrictPriority),
    /// [`Hysteresis`], statically dispatched.
    Hysteresis(Hysteresis),
    /// Any other policy, behind the original trait object.
    Custom(Box<dyn AllocPolicy>),
}

impl AllocPolicySelect {
    /// Stable policy name (see [`AllocPolicy::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            AllocPolicySelect::Even(p) => p.name(),
            AllocPolicySelect::Affinity(p) => p.name(),
            AllocPolicySelect::StrictPriority(p) => p.name(),
            AllocPolicySelect::Hysteresis(p) => p.name(),
            AllocPolicySelect::Custom(p) => p.name(),
        }
    }

    /// See [`AllocPolicy::targets`].
    pub fn targets(&self, view: &AllocView<'_>) -> (Vec<u32>, bool) {
        match self {
            AllocPolicySelect::Even(p) => p.targets(view),
            AllocPolicySelect::Affinity(p) => p.targets(view),
            AllocPolicySelect::StrictPriority(p) => p.targets(view),
            AllocPolicySelect::Hysteresis(p) => p.targets(view),
            AllocPolicySelect::Custom(p) => p.targets(view),
        }
    }

    /// See [`AllocPolicy::pick_cpu`].
    pub fn pick_cpu(&self, view: &AllocView<'_>, space: usize, free: &[usize]) -> usize {
        match self {
            AllocPolicySelect::Even(p) => p.pick_cpu(view, space, free),
            AllocPolicySelect::Affinity(p) => p.pick_cpu(view, space, free),
            AllocPolicySelect::StrictPriority(p) => p.pick_cpu(view, space, free),
            AllocPolicySelect::Hysteresis(p) => p.pick_cpu(view, space, free),
            AllocPolicySelect::Custom(p) => p.pick_cpu(view, space, free),
        }
    }

    /// See [`AllocPolicy::min_dwell`].
    pub fn min_dwell(&self) -> Option<SimDuration> {
        match self {
            AllocPolicySelect::Even(p) => p.min_dwell(),
            AllocPolicySelect::Affinity(p) => p.min_dwell(),
            AllocPolicySelect::StrictPriority(p) => p.min_dwell(),
            AllocPolicySelect::Hysteresis(p) => p.min_dwell(),
            AllocPolicySelect::Custom(p) => p.min_dwell(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_of(spaces: &[SpaceDemand], cpus: u32, rotation: u32) -> (Vec<u32>, bool, Vec<u32>) {
        let v = AllocView {
            spaces,
            total_cpus: cpus,
            rotation,
            last_space: &[],
        };
        let (even, rem) = SpaceShareEven.targets(&v);
        let (strict, _) = StrictPriority.targets(&v);
        (even, rem, strict)
    }

    fn sd(demand: u32, priority: u8) -> SpaceDemand {
        SpaceDemand {
            demand,
            priority,
            assigned: 0,
        }
    }

    #[test]
    fn even_split_redistributes_unused_shares() {
        // 6 CPUs, demands 1 and 10 at equal priority: §4.1's example —
        // the small space gets its 1, the big one absorbs the rest.
        let (even, rem, _) = view_of(&[sd(1, 1), sd(10, 1)], 6, 0);
        assert_eq!(even, vec![1, 5]);
        assert!(!rem);
    }

    #[test]
    fn remainder_rotates() {
        // 5 CPUs between two equal claimants: the extra one rotates.
        let (a, rem_a, _) = view_of(&[sd(10, 1), sd(10, 1)], 5, 0);
        let (b, rem_b, _) = view_of(&[sd(10, 1), sd(10, 1)], 5, 1);
        assert!(rem_a && rem_b);
        assert_eq!(a.iter().sum::<u32>(), 5);
        assert_eq!(b.iter().sum::<u32>(), 5);
        assert_ne!(a, b, "rotation must move the remainder processor");
    }

    #[test]
    fn strict_priority_starves_lower_spaces() {
        // The §2.2 pathology: a demanding high-priority space takes the
        // whole machine; even split would have shared it.
        let (even, _, strict) = view_of(&[sd(6, 2), sd(6, 1)], 6, 0);
        assert_eq!(strict, vec![6, 0]);
        assert_eq!(even, vec![6, 0], "priorities dominate in both policies");
        let (even_eq, _, strict_eq) = view_of(&[sd(6, 1), sd(6, 1)], 6, 0);
        assert_eq!(even_eq, vec![3, 3]);
        assert_eq!(strict_eq, vec![6, 0], "ties break by index, no sharing");
    }

    #[test]
    fn affinity_prefers_last_owner_else_first_free() {
        let spaces = [sd(2, 1), sd(2, 1)];
        let v = AllocView {
            spaces: &spaces,
            total_cpus: 4,
            rotation: 0,
            last_space: &[None, Some(1), Some(0), None],
        };
        assert_eq!(Affinity.pick_cpu(&v, 0, &[1, 2, 3]), 2);
        assert_eq!(Affinity.pick_cpu(&v, 1, &[1, 2, 3]), 1);
        // No history for the space: fall back to the lowest free CPU,
        // which is what the default (even) policy always does.
        assert_eq!(Affinity.pick_cpu(&v, 0, &[0, 3]), 0);
        assert_eq!(SpaceShareEven.pick_cpu(&v, 0, &[2, 3]), 2);
    }

    #[test]
    fn hysteresis_shares_like_even_but_declares_a_dwell() {
        let spaces = [sd(1, 1), sd(10, 1)];
        let v = AllocView {
            spaces: &spaces,
            total_cpus: 6,
            rotation: 0,
            last_space: &[],
        };
        assert_eq!(
            Hysteresis::default().targets(&v),
            SpaceShareEven.targets(&v)
        );
        assert_eq!(
            Hysteresis::default().min_dwell(),
            Some(DEFAULT_MIN_DWELL),
            "hysteresis must declare its dwell"
        );
        assert_eq!(SpaceShareEven.min_dwell(), None);
        assert_eq!(Affinity.min_dwell(), None);
        assert_eq!(StrictPriority.min_dwell(), None);
    }

    #[test]
    fn kind_round_trips_names() {
        for kind in AllocPolicyKind::ALL {
            assert_eq!(kind.name().parse::<AllocPolicyKind>().unwrap(), kind);
            assert_eq!(kind.build().name(), kind.name());
        }
        assert!("bogus".parse::<AllocPolicyKind>().is_err());
    }
}
