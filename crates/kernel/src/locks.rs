//! Kernel-side synchronization objects.
//!
//! Used by *kernel-direct* spaces (Topaz / Ultrix baselines), where every
//! contended application lock and every condition-variable operation goes
//! through the kernel — the cost structure §2.1 argues is unavoidable for
//! kernel threads. Kernel channels are also used by scheduler-activation
//! spaces when a workload deliberately synchronizes through the kernel
//! (the §5.2 upcall measurement).

use crate::exec::UnitRef;
use crate::ids::KtId;
use sa_machine::ids::LockId;
use std::collections::VecDeque;

/// A Topaz-style application mutex: test-and-set fast path at user level
/// when uncontended; contended acquires trap and block in the kernel
/// ("if a thread tries to acquire a busy lock, the thread will block in the
/// kernel and be re-scheduled only when the lock is released", §5.3).
#[derive(Debug, Default)]
pub(crate) struct KLock {
    pub holder: Option<KtId>,
    pub waiters: VecDeque<KtId>,
}

/// A kernel condition variable for application `Wait`/`Signal`/`Broadcast`
/// under kernel-direct spaces. Waiters remember which lock to re-acquire.
#[derive(Debug, Default)]
pub(crate) struct KCv {
    pub waiters: VecDeque<(KtId, LockId)>,
}

/// A kernel channel with semaphore semantics: signals accumulate, waits
/// consume. (Strict condition-variable semantics would make the ping-pong
/// microbenchmarks racy at startup; in steady state the cost is identical.)
#[derive(Debug, Default)]
pub(crate) struct KChan {
    pub pending: u32,
    pub waiters: VecDeque<UnitRef>,
}

impl KChan {
    /// Delivers one signal: returns the unit to wake, or banks the signal.
    pub(crate) fn signal(&mut self) -> Option<UnitRef> {
        if let Some(w) = self.waiters.pop_front() {
            Some(w)
        } else {
            self.pending += 1;
            None
        }
    }

    /// Attempts to consume a pending signal; if none, enqueues the waiter
    /// and returns false.
    pub(crate) fn wait(&mut self, unit: UnitRef) -> bool {
        if self.pending > 0 {
            self.pending -= 1;
            true
        } else {
            self.waiters.push_back(unit);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chan_signal_banks_when_no_waiter() {
        let mut c = KChan::default();
        assert_eq!(c.signal(), None);
        assert_eq!(c.pending, 1);
        assert!(c.wait(UnitRef::Kt(KtId(1))));
        assert_eq!(c.pending, 0);
    }

    #[test]
    fn chan_wait_blocks_then_wakes_fifo() {
        let mut c = KChan::default();
        assert!(!c.wait(UnitRef::Kt(KtId(1))));
        assert!(!c.wait(UnitRef::Kt(KtId(2))));
        assert_eq!(c.signal(), Some(UnitRef::Kt(KtId(1))));
        assert_eq!(c.signal(), Some(UnitRef::Kt(KtId(2))));
        assert_eq!(c.signal(), None);
        assert_eq!(c.pending, 1);
    }
}
