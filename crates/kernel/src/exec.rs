//! Micro-op execution machinery.
//!
//! Every execution unit (kernel thread or scheduler activation) advances by
//! draining a small pipeline of `Micro`s: timed `Seg`ments interleaved
//! with instantaneous `Effect`s. The dispatcher runs one segment at a
//! time on a CPU; at every segment boundary preemption can be honoured, and
//! preemptible segments can additionally be split mid-flight, with the
//! remainder saved as the unit's "register state". This is how the paper's
//! central currency — *who was stopped where, and what the kernel can hand
//! back* — is represented.

use crate::ids::{KtId, VpId};
use crate::upcall::{SyscallOutcome, UpcallEvent, WorkKind};
use sa_machine::ids::{ChanId, CvId, LockId, PageId, ThreadRef};
use sa_machine::program::OpResult;
use sa_sim::{CpuState, SimDuration};
use std::collections::VecDeque;

/// A timed stretch of execution on a CPU.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Seg {
    /// Length; [`SimDuration::MAX`] means "runs until kicked or preempted"
    /// (spin loops).
    pub dur: SimDuration,
    /// Whether the kernel may split this segment mid-flight. Kernel-mode
    /// paths are not preemptible (preemption is deferred to the segment
    /// boundary); user-mode computation and spinning are.
    pub preemptible: bool,
    /// Accounting classification.
    pub kind: WorkKind,
    /// Runtime-private resume cookie (user-level segments only); returned
    /// in [`crate::upcall::SavedContext`] if the segment is interrupted.
    pub cookie: u64,
}

impl Seg {
    /// The [`CpuState`] ledger bucket this segment's time belongs to.
    /// Non-preemptible segments are kernel paths regardless of their
    /// nominal [`WorkKind`]; preemptible ones map by kind.
    pub(crate) fn ledger_state(&self) -> CpuState {
        if !self.preemptible {
            return CpuState::Kernel;
        }
        match self.kind {
            WorkKind::UserWork => CpuState::User,
            WorkKind::RuntimeOverhead => CpuState::Overhead,
            WorkKind::SpinWait => CpuState::Spin,
            WorkKind::IdleSpin => CpuState::IdleSpin,
            WorkKind::UpcallWork => CpuState::Upcall,
        }
    }

    /// A non-preemptible kernel-mode segment.
    pub(crate) fn kernel(dur: SimDuration) -> Self {
        Seg {
            dur,
            preemptible: false,
            kind: WorkKind::RuntimeOverhead,
            cookie: 0,
        }
    }

    /// A preemptible user-mode computation segment.
    pub(crate) fn user(dur: SimDuration) -> Self {
        Seg {
            dur,
            preemptible: true,
            kind: WorkKind::UserWork,
            cookie: 0,
        }
    }
}

/// An instantaneous state change applied between segments.
///
/// Effects are interpreted by the kernel with full access to its state;
/// they exist so that op interpretation can be *queued* ahead of time while
/// still taking effect in correct virtual-time order.
#[derive(Debug)]
pub(crate) enum Effect {
    /// Deliver `result` to the unit's next refill (body step or runtime
    /// poll).
    Resume(ResumeWith),
    /// Create the kernel thread for the body stashed in
    /// `KThread::pending_child` and ready it.
    SpawnChild,
    /// Tear down the current kernel thread: wake joiners, mark dead, free
    /// the CPU.
    ExitFinal,
    /// Try to take an application lock (kernel-direct spaces): free → charge
    /// the fast path and continue; held → fall into the kernel block path.
    TryAcquire(LockId),
    /// End of the kernel block path for a contended lock: re-check and
    /// either take the lock or atomically enqueue and block.
    BlockOnLock(LockId),
    /// Release an application lock; hand off to a waiter if any.
    Unlock(LockId),
    /// Atomically release the lock and block on the condition variable.
    CvWait { cv: CvId, lock: LockId },
    /// Wake one waiter of the condition variable.
    CvSignal(CvId),
    /// Wake all waiters of the condition variable.
    CvBroadcast(CvId),
    /// Continue if the joined thread has exited, else block on it.
    JoinCheck(ThreadRef),
    /// Issue a blocking disk operation of the given length.
    StartIo(SimDuration),
    /// Check page residency; fault (block on disk) if absent.
    MemCheck(PageId),
    /// Signal a kernel channel (semaphore semantics).
    ChanSignal(ChanId),
    /// Wait on a kernel channel; consumes a pending signal or blocks.
    ChanWait(ChanId),
    /// Voluntarily yield the processor back to the scheduler.
    YieldCpu,
    /// Issue the disk read for a faulted page and block.
    StartPageIo(PageId),
    /// Put the daemon back to sleep and schedule its next wakeup.
    DaemonSleep,
    /// (Activations) hand the queued upcall event batch to the runtime.
    DeliverUpcall,
    /// (Activations) apply a syscall made by the user-level runtime.
    SaCall(crate::upcall::Syscall),
}

/// The four protection-boundary segments every kernel path is built
/// from, constructed once from the cost model. Op interpretation copies
/// these instead of re-deriving duration/preemptibility per micro-op.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SegCache {
    /// Trap into the kernel (`kernel_trap`).
    pub trap: Seg,
    /// Return to user mode (`kernel_return`).
    pub ret: Seg,
    /// Syscall parameter copy/check (`syscall_copy_check`).
    pub copy: Seg,
    /// A test-and-set probe (`test_and_set`).
    pub tas: Seg,
}

impl SegCache {
    pub(crate) fn new(cost: &sa_machine::CostModel) -> Self {
        SegCache {
            trap: Seg::kernel(cost.kernel_trap),
            ret: Seg::kernel(cost.kernel_return),
            copy: Seg::kernel(cost.syscall_copy_check),
            tas: Seg::kernel(cost.test_and_set),
        }
    }
}

/// What to report to the unit when it next refills.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ResumeWith {
    /// Kernel-direct body: result of the completed `Op`.
    Op(OpResult),
    /// Virtual processor: a syscall completed with this outcome.
    Syscall(SyscallOutcome),
    /// Virtual processor: freshly (re-)dispatched; the runtime should
    /// re-evaluate from its own per-VP state.
    Fresh,
    /// Virtual processor: a spin was ended by a kick.
    Kicked,
}

/// One pipeline element.
#[derive(Debug)]
pub(crate) enum Micro {
    Seg(Seg),
    Eff(Effect),
}

/// A unit's execution pipeline.
pub(crate) type Pipeline = VecDeque<Micro>;

/// What is currently dispatched on a CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Running {
    /// Nothing; the CPU is idle in the kernel.
    Idle,
    /// A kernel thread (application body, virtual processor, or daemon).
    Kt(KtId),
    /// A scheduler activation.
    Act(crate::ids::ActId),
}

/// An execution unit reference used in wait queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum UnitRef {
    Kt(KtId),
    Act(crate::ids::ActId),
}

/// Pending upcall batch assembled for delivery (kernel side).
#[derive(Debug, Default)]
pub(crate) struct UpcallBatch {
    pub events: Vec<UpcallEvent>,
    /// When each event was raised, parallel to `events` — the delivery
    /// latency histogram measures `delivery - queued_at[i]`.
    pub queued_at: Vec<sa_sim::SimTime>,
}

/// Identifies which VP a kernel thread serves, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KtFlavor {
    /// Runs an application `ThreadBody` directly (Topaz / Ultrix modes).
    AppBody,
    /// Serves as virtual processor `vp` for the space's user runtime
    /// (original FastThreads).
    Vp(VpId),
    /// A kernel daemon (index into the daemon table).
    Daemon(u32),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seg_constructors() {
        let k = Seg::kernel(SimDuration::from_micros(19));
        assert!(!k.preemptible);
        assert_eq!(k.kind, WorkKind::RuntimeOverhead);
        let u = Seg::user(SimDuration::from_micros(7));
        assert!(u.preemptible);
        assert_eq!(u.kind, WorkKind::UserWork);
    }

    #[test]
    fn pipeline_preserves_order() {
        let p: Pipeline = [
            Micro::Seg(Seg::kernel(SimDuration::from_micros(1))),
            Micro::Eff(Effect::YieldCpu),
        ]
        .into_iter()
        .collect();
        assert_eq!(p.len(), 2);
        assert!(matches!(p[0], Micro::Seg(_)));
        assert!(matches!(p[1], Micro::Eff(Effect::YieldCpu)));
    }
}
