//! Kernel threads (and the heavyweight-process stand-in).
//!
//! A Topaz-style kernel thread: a kernel-schedulable execution context with
//! its own kernel stack and control block. Three flavors exist (see
//! `KtFlavor`): application bodies (programming *with* kernel threads, as
//! in the paper's Topaz and Ultrix baselines), virtual processors serving a
//! user-level thread package (original FastThreads), and kernel daemons.

use crate::exec::{KtFlavor, Pipeline, ResumeWith};
use crate::ids::{AsId, KtId};
use sa_machine::ids::ChanId;
use sa_machine::program::{OpResult, ThreadBody};
use sa_machine::{CvId, LockId};

/// Why a kernel thread is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockKind {
    /// Waiting for a disk operation (I/O or page fault).
    Io,
    /// Waiting on a kernel channel.
    Chan(ChanId),
    /// Waiting for a contended application lock (kernel-direct spaces).
    AppLock(LockId),
    /// Waiting on an application condition variable (kernel-direct spaces).
    AppCv(CvId),
    /// Waiting for another kernel thread to exit.
    Join(KtId),
    /// A daemon between bursts.
    DaemonSleep,
    /// A virtual processor parked after giving up its CPU (also the
    /// holding state of a not-yet-started main thread).
    Parked,
}

impl BlockKind {
    /// The ledger wait gauge this block state feeds, if any. Daemon sleeps
    /// and parked VPs are intentional dormancy, not waiting-for-service,
    /// so they are not counted.
    pub(crate) fn wait_kind(self) -> Option<sa_sim::WaitKind> {
        match self {
            BlockKind::Io => Some(sa_sim::WaitKind::BlockedIo),
            BlockKind::Chan(_)
            | BlockKind::AppLock(_)
            | BlockKind::AppCv(_)
            | BlockKind::Join(_) => Some(sa_sim::WaitKind::BlockedSync),
            BlockKind::DaemonSleep | BlockKind::Parked => None,
        }
    }

    /// Short static name used in trace events.
    pub(crate) fn name(self) -> &'static str {
        match self {
            BlockKind::Io => "io",
            BlockKind::Chan(_) => "chan",
            BlockKind::AppLock(_) => "app_lock",
            BlockKind::AppCv(_) => "app_cv",
            BlockKind::Join(_) => "join",
            BlockKind::DaemonSleep => "daemon_sleep",
            BlockKind::Parked => "parked",
        }
    }
}

/// Scheduling state of a kernel thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KtState {
    /// Runnable, waiting for a processor.
    Ready,
    /// Dispatched on the given CPU.
    Running(u16),
    /// Blocked in the kernel.
    Blocked(BlockKind),
    /// Exited; the control block remains for joiners.
    Dead,
}

/// The hot half of a kernel thread control block: the words the
/// dispatcher reads on every scheduling decision (is it runnable, where,
/// at what priority, on whose behalf). 20 bytes; a 4096-row page packs
/// ~3 threads per cache line, so ready-queue scans and invariant checks
/// walk lines instead of chasing per-thread boxes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct KtHot {
    pub space: AsId,
    /// Scheduler priority; higher wins. Daemons run above applications.
    pub prio: u8,
    pub state: KtState,
    pub flavor: KtFlavor,
    /// A deferred time-slice preemption to honour at the next boundary.
    pub pending_preempt: bool,
}

/// The cold half: bodies, pipelines, and bookkeeping touched only when
/// the thread itself runs or changes lifecycle — never during another
/// thread's dispatch.
#[derive(Default)]
pub(crate) struct KtCold {
    /// The application body (only for `KtFlavor::AppBody`).
    pub body: Option<Box<dyn ThreadBody>>,
    /// Pending micro-ops; survives preemption (the kernel resumes kernel
    /// threads directly and invisibly — the exact behaviour the paper
    /// criticizes, §2.2).
    pub pipeline: Pipeline,
    /// Result to deliver at the next refill.
    pub resume: Option<ResumeWith>,
    /// Body stashed by `Op::Fork` until the `SpawnChild` effect runs.
    pub pending_child: Option<Box<dyn ThreadBody>>,
    /// Priority for the stashed child (`Op::ForkPrio`).
    pub pending_child_prio: Option<u8>,
    /// Threads waiting in `Join` on this one.
    pub joiners: Vec<KtId>,
    /// Set when the thread has exited (distinct from `Dead` only during
    /// teardown).
    pub exited: bool,
}

impl KtCold {
    /// Takes the resume value, defaulting to `Done` for app bodies.
    pub(crate) fn take_resume_op(&mut self) -> OpResult {
        match self.resume.take() {
            Some(ResumeWith::Op(r)) => r,
            Some(other) => unreachable!("VP resume {other:?} delivered to an app body"),
            None => OpResult::Done,
        }
    }
}

/// The kernel thread table: struct-of-arrays over paged slabs, indexed
/// by dense [`KtId`] row numbers. `KtId(i)` addresses `hot[i]` and
/// `cold[i]`; rows are never freed (control blocks outlive exits for
/// joiners, as in the monolithic version).
#[derive(Default)]
pub(crate) struct KtTable {
    pub hot: sa_sim::PagedVec<KtHot, 4096>,
    pub cold: sa_sim::PagedVec<KtCold, 1024>,
}

impl KtTable {
    pub(crate) fn len(&self) -> usize {
        self.hot.len()
    }

    /// Allocates a control block in `Ready` state and returns its id.
    pub(crate) fn push(&mut self, space: AsId, prio: u8, flavor: KtFlavor) -> KtId {
        let row = self.hot.push(KtHot {
            space,
            prio,
            state: KtState::Ready,
            flavor,
            pending_preempt: false,
        });
        let cold_row = self.cold.push(KtCold::default());
        debug_assert_eq!(row, cold_row);
        KtId(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_machine::program::OpResult;

    #[test]
    fn new_thread_is_ready() {
        let mut kts = KtTable::default();
        let kt = kts.push(AsId(0), 1, KtFlavor::AppBody);
        assert_eq!(kt, KtId(0));
        assert_eq!(kts.hot[0].state, KtState::Ready);
        assert!(kts.cold[0].pipeline.is_empty());
    }

    #[test]
    fn take_resume_defaults_to_done() {
        let mut kt = KtCold::default();
        assert_eq!(kt.take_resume_op(), OpResult::Done);
        kt.resume = Some(ResumeWith::Op(OpResult::Start));
        assert_eq!(kt.take_resume_op(), OpResult::Start);
        assert_eq!(kt.take_resume_op(), OpResult::Done);
    }

    #[test]
    fn hot_rows_stay_small() {
        // The whole point of the split: the per-thread dispatch words must
        // stay within a fraction of a cache line.
        assert!(core::mem::size_of::<KtHot>() <= 24);
    }
}
