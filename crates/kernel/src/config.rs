//! Kernel and address-space configuration.

use crate::policy::AllocPolicyKind;
use crate::upcall::UserRuntime;
use sa_machine::disk::DiskConfig;
use sa_machine::program::ThreadBody;
use sa_sim::{EventCore, SimDuration, SimTime};

/// Which processor-scheduling regime the kernel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// The unmodified Topaz kernel: one global kernel-thread scheduler,
    /// priority + round-robin time slicing, oblivious to address spaces
    /// and to user-level thread state (§2.2). Baseline for "Topaz threads"
    /// and "original FastThreads".
    TopazNative,
    /// The paper's modified kernel: the processor allocator space-shares
    /// CPUs among address spaces (§4.1); scheduler-activation spaces get
    /// upcalls, kernel-thread spaces get the Topaz scheduler *within their
    /// allocation*, so both kinds coexist without static partitioning.
    SaAllocator,
}

/// A periodic kernel daemon thread (§5.3: "the Topaz operating system has
/// several daemon threads which wake up periodically, execute for a short
/// time, and then go back to sleep").
#[derive(Debug, Clone, Copy)]
pub struct DaemonSpec {
    /// Mean interval between wakeups (jittered per-daemon, seeded).
    pub period: SimDuration,
    /// How long each burst runs.
    pub burst: SimDuration,
}

impl DaemonSpec {
    /// The daemon set used by the application experiments: three daemons
    /// on staggered periods with ~1 ms bursts (§5.3 blames "several daemon
    /// threads which wake up periodically" for the Figure 1 divergence).
    pub fn topaz_default_set() -> Vec<DaemonSpec> {
        vec![
            DaemonSpec {
                period: SimDuration::from_millis(30),
                burst: SimDuration::from_millis(1),
            },
            DaemonSpec {
                period: SimDuration::from_millis(45),
                burst: SimDuration::from_millis(1),
            },
            DaemonSpec {
                period: SimDuration::from_millis(60),
                burst: SimDuration::from_millis(1),
            },
        ]
    }
}

/// Kernel-wide configuration.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Number of physical processors (the paper's Firefly had six).
    pub cpus: u16,
    /// Scheduling regime.
    pub sched: SchedMode,
    /// Processor-allocation policy (only consulted in
    /// [`SchedMode::SaAllocator`]).
    pub alloc_policy: AllocPolicyKind,
    /// Kernel daemon threads.
    pub daemons: Vec<DaemonSpec>,
    /// Disk device configuration.
    pub disk: DiskConfig,
    /// RNG seed; identical seeds reproduce runs exactly.
    pub seed: u64,
    /// Which event-queue implementation drives the run. Cores are
    /// observationally identical (pinned by trace-identity tests); the
    /// non-default [`EventCore::Indexed`] exists for differential testing
    /// and benchmarking.
    pub event_core: EventCore,
    /// Hard stop: the run aborts (reporting `timed_out`) if virtual time
    /// exceeds this bound, so misconfigured workloads cannot hang a suite.
    pub run_limit: SimTime,
    /// Number of shards the run is partitioned into. `1` (the default)
    /// is the serial engine, byte-identical hot path included. Values
    /// above 1 split the simulated CPUs and address spaces across
    /// per-shard event lanes staged by host worker threads under
    /// conservative lookahead; the delivered event order — and therefore
    /// every trace, ledger, and golden output — is byte-identical to the
    /// serial engine at any shard count (DESIGN.md §7). Clamped to the
    /// CPU count.
    pub shards: u16,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            cpus: 6,
            sched: SchedMode::SaAllocator,
            alloc_policy: AllocPolicyKind::default(),
            daemons: Vec::new(),
            disk: DiskConfig::default(),
            seed: 0x005e_ed5a,
            event_core: EventCore::default(),
            run_limit: SimTime::from_millis(600_000), // 10 virtual minutes
            shards: 1,
        }
    }
}

/// Which heavyweight cost set a kernel-scheduled space charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelFlavor {
    /// Topaz kernel threads: Table 1's middle column.
    TopazThreads,
    /// Ultrix-like processes: Table 1's right column. Structurally modelled
    /// as kernel threads whose create/exit/signal/wait paths pay
    /// address-space-scale costs; the latency benchmarks never share
    /// fine-grained state across processes, so the missing address-space
    /// separation is unobservable.
    UltrixProcesses,
}

/// What kind of thread management an address space uses.
pub enum SpaceKindSpec {
    /// Application programs directly against kernel threads (or processes);
    /// every thread operation traps.
    KernelDirect {
        /// Cost flavor.
        flavor: KernelFlavor,
        /// The main thread's body.
        main: Box<dyn ThreadBody>,
    },
    /// A user-level thread package manages the space's parallelism. The
    /// substrate (kernel-thread VPs vs. scheduler activations) is chosen by
    /// [`UserRuntime::kthread_vps`].
    UserLevel {
        /// The thread-package instance (already holding its main body, or
        /// it will receive it via [`UserRuntime::set_main`]).
        runtime: Box<dyn UserRuntime>,
        /// The main thread's body.
        main: Box<dyn ThreadBody>,
    },
}

/// Specification of one address space.
pub struct SpaceSpec {
    /// Debug label.
    pub name: String,
    /// Allocation priority: higher wins (kernel daemons run above all
    /// application spaces).
    pub priority: u8,
    /// Thread-management kind.
    pub kind: SpaceKindSpec,
    /// Resident-set capacity in pages; `None` disables page faulting.
    pub mem_pages: Option<usize>,
    /// Delay before the space starts (staggers multiprogrammed runs).
    pub start_at: SimTime,
}

impl SpaceSpec {
    /// A kernel-direct space with default priority and no paging.
    pub fn kernel_direct(
        name: impl Into<String>,
        flavor: KernelFlavor,
        main: Box<dyn ThreadBody>,
    ) -> Self {
        SpaceSpec {
            name: name.into(),
            priority: 1,
            kind: SpaceKindSpec::KernelDirect { flavor, main },
            mem_pages: None,
            start_at: SimTime::ZERO,
        }
    }

    /// A user-level-threads space with default priority and no paging.
    pub fn user_level(
        name: impl Into<String>,
        runtime: Box<dyn UserRuntime>,
        main: Box<dyn ThreadBody>,
    ) -> Self {
        SpaceSpec {
            name: name.into(),
            priority: 1,
            kind: SpaceKindSpec::UserLevel { runtime, main },
            mem_pages: None,
            start_at: SimTime::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_paper_machine() {
        let c = KernelConfig::default();
        assert_eq!(c.cpus, 6);
        assert_eq!(c.sched, SchedMode::SaAllocator);
        assert_eq!(c.alloc_policy, AllocPolicyKind::SpaceShareEven);
        assert!(c.daemons.is_empty());
        assert_eq!(c.event_core, EventCore::Wheel);
        assert_eq!(c.shards, 1, "serial engine by default");
    }

    #[test]
    fn default_daemon_set_has_three() {
        assert_eq!(DaemonSpec::topaz_default_set().len(), 3);
    }
}
