//! The kernel ↔ user-level interface.
//!
//! This module is the paper in types:
//!
//! - [`UpcallEvent`] — Table 2, the four events the kernel vectors to the
//!   user-level thread scheduler (plus the batching rule: "in practice,
//!   these events occur in combinations; when this occurs, a single upcall
//!   is made that passes all of the events that need to be handled").
//! - [`Syscall`] — the downward direction, including Table 3's two
//!   processor-allocation hints, the bulk recycling of discarded
//!   activations (§4.3), and the ordinary blocking calls (I/O, kernel
//!   synchronization) whose *handling* differs between kernel threads and
//!   scheduler activations.
//! - [`UserRuntime`] — the contract a user-level thread system implements.
//!   The kernel drives virtual processors by calling
//!   [`UserRuntime::poll`]; the runtime answers with one [`VpAction`] at a
//!   time. The kernel has **no knowledge of user-level data structures**
//!   (§3.1): everything it hands back on a preemption is the opaque
//!   [`SavedContext`] it captured, exactly as real hardware register state
//!   would be.

use crate::ids::VpId;
use sa_machine::ids::{ChanId, PageId};
use sa_machine::program::ThreadBody;
use sa_sim::{SimDuration, SimTime, Trace, UpcallKind};

/// The machine state of a user-level computation stopped by the kernel,
/// returned to the user level in a preemption or unblock notification.
///
/// In the real system this is the thread's register state saved by the
/// low-level interrupt/page-fault handlers (§3.1). In the simulator it is
/// the in-flight work segment: the runtime-assigned cookie identifying what
/// was executing, and how much of the segment remained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SavedContext {
    /// The `cookie` of the segment that was executing (runtime-defined).
    pub cookie: u64,
    /// Unfinished portion of that segment.
    pub remaining: SimDuration,
    /// Classification of the interrupted work (for accounting only).
    pub kind: WorkKind,
}

impl SavedContext {
    /// The saved context of a processor that was stopped between segments
    /// (nothing was in flight).
    pub fn empty() -> Self {
        SavedContext {
            cookie: 0,
            remaining: SimDuration::ZERO,
            kind: WorkKind::RuntimeOverhead,
        }
    }
}

/// Table 2: the events the kernel vectors to an address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpcallEvent {
    /// "Add this processor: execute a runnable user-level thread."
    ///
    /// The processor is the one the upcall itself is running on.
    AddProcessor {
        /// The allocator grant decision that produced this processor
        /// (see [`crate::provenance`]; 0 in hand-built test batches).
        decision: u64,
    },
    /// "Processor has been preempted (preempted activation # and its
    /// machine state): return to the ready list the user-level thread that
    /// was executing in the context of the preempted scheduler activation."
    Preempted {
        /// The stopped activation.
        vp: VpId,
        /// The user-level machine state it was running.
        saved: SavedContext,
        /// Per-space notification sequence number (see
        /// [`UpcallEvent::seq`]). Processing this event is what makes the
        /// stopped activation's husk safe to recycle.
        seq: u64,
        /// The allocator victim decision that stopped this processor
        /// (see [`crate::provenance`]; 0 in hand-built test batches).
        decision: u64,
    },
    /// "Scheduler activation has blocked (blocked activation #): the
    /// blocked scheduler activation is no longer using its processor."
    Blocked {
        /// The activation that blocked.
        vp: VpId,
        /// Per-space notification sequence number; also the unique id of
        /// this blocking episode, echoed by the matching `Unblocked` as
        /// `blocked_seq`. Activation ids are recycled (§4.3) and the two
        /// notifications can be observed out of order across processors,
        /// so the pair is keyed by episode, not by activation.
        seq: u64,
    },
    /// "Scheduler activation has unblocked (unblocked activation # and its
    /// machine state): return to the ready list the user-level thread that
    /// was executing in the context of the blocked scheduler activation."
    ///
    /// `outcome` carries the result of the kernel operation the thread was
    /// blocked in (the value the syscall would have returned).
    Unblocked {
        /// The activation whose kernel operation completed.
        vp: VpId,
        /// The blocking episode this completion belongs to (the `seq` of
        /// the matching [`UpcallEvent::Blocked`]).
        blocked_seq: u64,
        /// This notification's own per-space sequence number (see
        /// [`UpcallEvent::seq`]).
        seq: u64,
        /// The thread's saved user-level machine state.
        saved: SavedContext,
        /// Result of the kernel operation the thread was blocked in.
        outcome: SyscallOutcome,
    },
}

impl UpcallEvent {
    /// The event's [`UpcallKind`] — the key for per-kind counters and the
    /// typed trace stream. `match` is exhaustive: adding an event variant
    /// forces a kind (and thereby a counter slot) to exist for it.
    pub fn kind(&self) -> UpcallKind {
        match self {
            UpcallEvent::AddProcessor { .. } => UpcallKind::AddProcessor,
            UpcallEvent::Preempted { .. } => UpcallKind::Preempted,
            UpcallEvent::Blocked { .. } => UpcallKind::Blocked,
            UpcallEvent::Unblocked { .. } => UpcallKind::Unblocked,
        }
    }

    /// The virtual processor the event concerns, when it has one.
    pub fn vp(&self) -> Option<VpId> {
        match self {
            UpcallEvent::AddProcessor { .. } => None,
            UpcallEvent::Preempted { vp, .. }
            | UpcallEvent::Blocked { vp, .. }
            | UpcallEvent::Unblocked { vp, .. } => Some(*vp),
        }
    }

    /// The allocator decision stamped on the event, when it carries one
    /// (`AddProcessor` grants and `Preempted` victim choices; 0 means
    /// "no recorded decision", e.g. a hand-built test batch).
    pub fn decision(&self) -> Option<u64> {
        match self {
            UpcallEvent::AddProcessor { decision } | UpcallEvent::Preempted { decision, .. } => {
                Some(*decision)
            }
            UpcallEvent::Blocked { .. } | UpcallEvent::Unblocked { .. } => None,
        }
    }

    /// The event's per-space notification sequence number, when it has
    /// one. The kernel numbers every `Blocked`/`Preempted`/`Unblocked`
    /// notification for a space consecutively from 1. The runtime reports
    /// the largest `n` such that it has processed every notification with
    /// `seq <= n` back to the kernel in
    /// [`Syscall::RecycleActivations`]; the kernel recycles an
    /// activation id only once the notification that released it is below
    /// that floor, so a recycled id can never be re-dispatched while one
    /// of its earlier notifications is still unprocessed.
    pub fn seq(&self) -> Option<u64> {
        match self {
            UpcallEvent::AddProcessor { .. } => None,
            UpcallEvent::Preempted { seq, .. }
            | UpcallEvent::Blocked { seq, .. }
            | UpcallEvent::Unblocked { seq, .. } => Some(*seq),
        }
    }
}

/// Accounting classification of a work segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkKind {
    /// Application computation.
    UserWork,
    /// Thread-package bookkeeping (TCB, ready lists, locks).
    RuntimeOverhead,
    /// Busy-waiting on an application or runtime spin lock.
    SpinWait,
    /// Busy-waiting in the idle loop (no runnable threads).
    IdleSpin,
    /// Processing an upcall at user level.
    UpcallWork,
}

impl WorkKind {
    /// Short label for traces and timeline exports.
    pub fn name(self) -> &'static str {
        match self {
            WorkKind::UserWork => "user",
            WorkKind::RuntimeOverhead => "overhead",
            WorkKind::SpinWait => "spin",
            WorkKind::IdleSpin => "idle_spin",
            WorkKind::UpcallWork => "upcall",
        }
    }
}

/// One timed segment of virtual-processor execution, emitted by the runtime.
#[derive(Debug, Clone, Copy)]
pub struct VpSeg {
    /// How long the segment runs.
    pub dur: SimDuration,
    /// Runtime-private identification of what this segment is; handed back
    /// verbatim in [`SavedContext`] if the segment is interrupted.
    pub cookie: u64,
    /// Accounting classification.
    pub kind: WorkKind,
}

impl VpSeg {
    /// A segment of runtime overhead with no interesting resume semantics.
    pub fn overhead(dur: SimDuration) -> Self {
        VpSeg {
            dur,
            cookie: 0,
            kind: WorkKind::RuntimeOverhead,
        }
    }
}

/// What a virtual processor does next, as answered by [`UserRuntime::poll`].
#[derive(Debug)]
pub enum VpAction {
    /// Execute one segment, then poll again with [`PollReason::SegDone`].
    Run(VpSeg),
    /// Busy-wait indefinitely (spin lock or idle loop). Ends when the
    /// runtime kicks this VP ([`RtEnv::kick`]) or the kernel preempts it.
    /// Poll resumes with [`PollReason::Kicked`] after a kick.
    Spin {
        /// Runtime-private resume cookie (as in [`VpSeg::cookie`]).
        cookie: u64,
        /// [`WorkKind::SpinWait`] or [`WorkKind::IdleSpin`].
        kind: WorkKind,
    },
    /// Trap into the kernel. If the call blocks, a kernel-thread VP simply
    /// blocks (and later resumes with [`PollReason::SyscallDone`]); a
    /// scheduler-activation VP triggers the Table 2 `Blocked` upcall and the
    /// thread's eventual return arrives via `Unblocked`. Non-blocking calls
    /// resume with [`PollReason::SyscallDone`] on the same VP either way.
    Syscall {
        /// The kernel call to make.
        call: Syscall,
    },
    /// Return this processor to the kernel for reallocation. The activation
    /// is discarded (SA mode); a kernel-thread VP parks until re-dispatched.
    GiveUp,
}

/// Why the kernel is polling the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollReason {
    /// The VP was just (re)dispatched: after an upcall delivery, at first
    /// run, or when a kernel-thread VP gets the processor back.
    Fresh,
    /// The previous [`VpAction::Run`] segment completed.
    SegDone,
    /// The previous [`VpAction::Syscall`] returned without blocking, or the
    /// blocking call a kernel-thread VP made has completed.
    SyscallDone(SyscallOutcome),
    /// The VP was spinning and another VP kicked it.
    Kicked,
}

/// Kernel calls available to user-level code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Syscall {
    /// Blocking device I/O with an explicit duration (the paper's 50 ms
    /// buffer-cache miss).
    Io {
        /// Device service time.
        dur: SimDuration,
    },
    /// Touch a page; blocks only if it faults.
    MemRead {
        /// The page touched.
        page: PageId,
    },
    /// Kernel-level channel signal (wakes at most one kernel-level waiter).
    KernelSignal {
        /// The channel signalled.
        chan: ChanId,
    },
    /// Kernel-level channel wait (blocks until signalled).
    KernelWait {
        /// The channel waited on.
        chan: ChanId,
    },
    /// Table 3: "Add more processors (additional # of processors needed)".
    /// We transmit the space's *total* desired processor count; the paper's
    /// incremental form is a delta encoding of the same information.
    SetDesiredProcessors {
        /// The space's total desired processor count.
        total: u32,
    },
    /// Table 3: "This processor is idle — preempt this processor if another
    /// address space needs it." A hint; the call returns and the VP keeps
    /// spinning until the kernel actually takes the processor.
    ProcessorIdle,
    /// Return discarded activations to the kernel in bulk (§4.3). The
    /// runtime acknowledges the contiguous prefix of notifications it has
    /// processed; the kernel re-caches every husk whose releasing
    /// notification falls inside that prefix (see [`UpcallEvent::seq`]).
    RecycleActivations {
        /// Every notification with `seq <= upto` has been processed.
        upto: u64,
    },
    /// §3.1 priority preemption: ask the kernel to interrupt one of this
    /// space's own processors so its thread can be rescheduled.
    PreemptVp {
        /// The virtual processor (activation) to interrupt.
        vp: VpId,
    },
}

impl Syscall {
    /// Short label for traces (`TrapEnter` events).
    pub fn name(&self) -> &'static str {
        match self {
            Syscall::Io { .. } => "io",
            Syscall::MemRead { .. } => "mem_read",
            Syscall::KernelSignal { .. } => "kernel_signal",
            Syscall::KernelWait { .. } => "kernel_wait",
            Syscall::SetDesiredProcessors { .. } => "set_desired_processors",
            Syscall::ProcessorIdle => "processor_idle",
            Syscall::RecycleActivations { .. } => "recycle_activations",
            Syscall::PreemptVp { .. } => "preempt_vp",
        }
    }
}

/// Result of a completed kernel call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallOutcome {
    /// Generic success (hints, recycling, signals that woke no one special).
    Ok,
    /// The I/O or page read finished.
    IoDone,
    /// The kernel-level wait was satisfied by a signal.
    ChanSignalled,
    /// `MemRead` hit a resident page; no block happened.
    MemHit,
}

/// Access to kernel services during a runtime callback.
///
/// Mutations requested here are applied by the kernel *after* the callback
/// returns, mirroring real trap semantics and keeping the runtime free of
/// reentrancy.
pub struct RtEnv<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// The calibrated cost model (runtimes charge themselves with it).
    pub cost: &'a sa_machine::CostModel,
    /// The address space the callback runs for (raw id, for trace events).
    pub space: u32,
    /// Execution trace sink.
    pub trace: &'a mut Trace,
    pub(crate) kicks: Vec<VpId>,
}

impl<'a> RtEnv<'a> {
    /// Creates a callback environment. The kernel builds these around
    /// every runtime callback; custom drivers and runtime unit tests may
    /// construct them directly.
    pub fn new(
        now: SimTime,
        cost: &'a sa_machine::CostModel,
        space: u32,
        trace: &'a mut Trace,
    ) -> Self {
        RtEnv {
            now,
            cost,
            space,
            trace,
            kicks: Vec::new(),
        }
    }

    /// Wake a VP of the same address space that is currently spinning
    /// (models the spinner's test-and-set observing the released lock).
    pub fn kick(&mut self, vp: VpId) {
        self.kicks.push(vp);
    }

    /// The kicks requested so far (drivers consume these after each
    /// callback; the kernel does so internally).
    pub fn take_kicks(&mut self) -> Vec<VpId> {
        std::mem::take(&mut self.kicks)
    }
}

/// A user-level thread system, as seen by the kernel.
///
/// Implementations: original FastThreads on kernel threads (no upcalls are
/// ever delivered; the kernel schedules its VPs obliviously) and
/// FastThreads on scheduler activations (full Table 2/Table 3 protocol).
pub trait UserRuntime {
    /// Number of kernel threads to create as virtual processors, or `None`
    /// if this runtime runs on scheduler activations.
    fn kthread_vps(&self) -> Option<u32>;

    /// Hands the runtime its main application thread at space start.
    fn set_main(&mut self, body: Box<dyn ThreadBody>);

    /// Delivers a batch of Table 2 events on virtual processor `vp`.
    ///
    /// Only called for scheduler-activation runtimes. Zero-time: the actual
    /// processing cost is charged through the segments the runtime emits
    /// from subsequent [`UserRuntime::poll`] calls on `vp`.
    fn deliver_upcall(&mut self, env: &mut RtEnv<'_>, vp: VpId, events: &[UpcallEvent]);

    /// Asks virtual processor `vp` what to do next.
    fn poll(&mut self, env: &mut RtEnv<'_>, vp: VpId, reason: PollReason) -> VpAction;

    /// True when every user-level thread has exited (the space is done).
    fn quiescent(&self) -> bool;

    /// Total desired processors right now (used by tests and, in kernel-
    /// thread mode, never consulted — the kernel can't see it; that is the
    /// integration problem the paper fixes).
    fn desired_processors(&self) -> u32;

    /// One-line operation-count summary for diagnostics.
    fn stats_line(&self) -> String {
        String::new()
    }

    /// Total time user-level threads spent on ready lists before being
    /// dispatched, in nanoseconds (the ledger's ready-wait feed for
    /// spaces whose scheduling the kernel cannot see).
    fn ready_wait_ns(&self) -> u64 {
        0
    }

    /// Multi-line internal state dump for debugging stuck runs.
    fn debug_dump(&self) -> String {
        String::new()
    }

    /// Resident footprint of the runtime's thread-control-block storage,
    /// or `None` for runtimes without slab-backed tables. Feeds the
    /// `bytes_per_thread` benchmark line.
    fn tcb_slab_stats(&self) -> Option<TcbSlabStats> {
        None
    }
}

/// Resident TCB-slab footprint reported by [`UserRuntime::tcb_slab_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcbSlabStats {
    /// Rows ever allocated — the high-water mark of concurrently live
    /// threads (exited rows are recycled, never freed back).
    pub rows: usize,
    /// Bytes resident in the hot (dispatch-path) half of the slab.
    pub hot_bytes: usize,
    /// Bytes resident across hot and cold halves (excludes heap owned by
    /// boxed thread bodies and continuation queues).
    pub total_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saved_context_empty() {
        let s = SavedContext::empty();
        assert!(s.remaining.is_zero());
        assert_eq!(s.cookie, 0);
    }

    #[test]
    fn vpseg_overhead_helper() {
        let s = VpSeg::overhead(SimDuration::from_micros(3));
        assert_eq!(s.kind, WorkKind::RuntimeOverhead);
        assert_eq!(s.dur.as_micros(), 3);
    }

    #[test]
    fn upcall_events_map_to_kinds() {
        let add = UpcallEvent::AddProcessor { decision: 42 };
        assert_eq!(add.kind(), UpcallKind::AddProcessor);
        assert_eq!(add.vp(), None);
        let ev = UpcallEvent::Blocked {
            vp: VpId(4),
            seq: 7,
        };
        assert_eq!(ev.kind(), UpcallKind::Blocked);
        assert_eq!(ev.vp(), Some(VpId(4)));
        assert_eq!(ev.seq(), Some(7));
        assert_eq!(ev.decision(), None);
        assert_eq!(add.seq(), None);
        assert_eq!(add.decision(), Some(42));
    }

    #[test]
    fn rtenv_collects_kicks() {
        let cost = sa_machine::CostModel::firefly_prototype();
        let mut trace = Trace::disabled();
        let mut env = RtEnv::new(SimTime::ZERO, &cost, 0, &mut trace);
        env.kick(VpId(3));
        env.kick(VpId(1));
        assert_eq!(env.kicks, vec![VpId(3), VpId(1)]);
    }
}
