//! Typed cross-shard message routing (the sharded run's choke points).
//!
//! In a sharded run exactly three kinds of kernel action cross shard
//! boundaries: processor **grants** (the allocator hands a CPU homed in
//! one shard to an address space homed in another), **upcall batches**
//! (a preemption/IO notification delivered on a CPU whose shard differs
//! from the space's), and **IO completions** (disk events live on lane
//! 0; the waiter's space may be anywhere). Every such action flows
//! through the [`Mailbox`]: the single typed point where the edge is
//! classified (same-shard vs cross-shard against the
//! [`ShardPlan`](sa_sim::ShardPlan)) and counted.
//!
//! Application is immediate and synchronous: the allocator performs
//! *dependent* grants within one rebalance pass (grant *i+1*'s free-CPU
//! set depends on grant *i*'s effects), so deferring application to a
//! queue-and-drain step would change scheduling semantics. Determinism
//! is carried underneath by the event lanes (`sa_sim::shard`): each of
//! these edges costs at least the cost model's minimum cross-shard edge
//! (`alloc_decision`, `act_stop_and_save`, `interrupt_entry`
//! respectively), which is exactly the staging lookahead, so a staged
//! lane never runs past an incoming edge. The mailbox is the routing
//! and observability layer above that — its counters tell you how much
//! of a workload's traffic actually crosses shards, and they are
//! *totals-invariant* across shard counts (a sharded run performs the
//! same calls in the same order as the serial run).

use sa_sim::ShardPlan;

/// A message crossing (or potentially crossing) a shard boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossShardMsg {
    /// The allocator granted `cpu` to `space` (edge cost ≥
    /// `alloc_decision`).
    Grant {
        /// Receiving CPU.
        cpu: u32,
        /// Receiving space.
        space: u32,
    },
    /// An upcall batch of `events` events was delivered to `space` on
    /// `cpu` (edge cost ≥ `act_stop_and_save`).
    UpcallBatch {
        /// Delivering CPU.
        cpu: u32,
        /// Receiving space.
        space: u32,
        /// Number of events in the batch.
        events: u32,
    },
    /// Disk operation `op` completed for `space` (edge cost ≥
    /// `interrupt_entry`; disk events are homed on lane 0).
    IoComplete {
        /// Completed operation id.
        op: u32,
        /// Waiting space.
        space: u32,
    },
}

/// Always-on counters of mailbox traffic, split by message kind and by
/// whether the edge crossed a shard boundary under the active plan.
/// With one shard everything is same-shard by definition; per-kind
/// *totals* (`same + cross`) are identical at any shard count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MailboxStats {
    /// Grants whose CPU and space share a shard.
    pub grants_same: u64,
    /// Grants crossing shards.
    pub grants_cross: u64,
    /// Upcall batches delivered within one shard.
    pub upcalls_same: u64,
    /// Upcall batches crossing shards.
    pub upcalls_cross: u64,
    /// IO completions for spaces homed on the disk lane (lane 0).
    pub io_same: u64,
    /// IO completions crossing to another shard.
    pub io_cross: u64,
}

impl MailboxStats {
    /// All messages, same-shard and cross-shard.
    pub fn total(&self) -> u64 {
        self.grants_same
            + self.grants_cross
            + self.upcalls_same
            + self.upcalls_cross
            + self.io_same
            + self.io_cross
    }

    /// Messages that crossed a shard boundary.
    pub fn total_cross(&self) -> u64 {
        self.grants_cross + self.upcalls_cross + self.io_cross
    }

    /// One-line human summary (`cross/total` per kind), for audit output.
    pub fn summary_line(&self) -> String {
        format!(
            "mailbox: grants {}/{} cross, upcalls {}/{} cross, io {}/{} cross",
            self.grants_cross,
            self.grants_same + self.grants_cross,
            self.upcalls_cross,
            self.upcalls_same + self.upcalls_cross,
            self.io_cross,
            self.io_same + self.io_cross,
        )
    }
}

/// The kernel's cross-shard mailbox. Owns only the counters; the
/// messages themselves are applied synchronously by the caller (see the
/// module docs for why).
#[derive(Debug, Default)]
pub struct Mailbox {
    stats: MailboxStats,
}

impl Mailbox {
    /// Records `msg`, classifying its edge under `plan`.
    pub fn post(&mut self, plan: &ShardPlan, msg: CrossShardMsg) {
        let (src, dst, same, cross): (u32, u32, &mut u64, &mut u64) = match msg {
            CrossShardMsg::Grant { cpu, space } => (
                plan.space_shard(space),
                plan.cpu_shard(cpu as usize),
                &mut self.stats.grants_same,
                &mut self.stats.grants_cross,
            ),
            CrossShardMsg::UpcallBatch { cpu, space, .. } => (
                plan.space_shard(space),
                plan.cpu_shard(cpu as usize),
                &mut self.stats.upcalls_same,
                &mut self.stats.upcalls_cross,
            ),
            CrossShardMsg::IoComplete { space, .. } => (
                0,
                plan.space_shard(space),
                &mut self.stats.io_same,
                &mut self.stats.io_cross,
            ),
        };
        if src == dst {
            *same += 1;
        } else {
            *cross += 1;
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MailboxStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_sim::SimDuration;

    #[test]
    fn one_shard_never_crosses() {
        let plan = ShardPlan::new(1, 6, SimDuration::from_micros(15));
        let mut mb = Mailbox::default();
        for cpu in 0..6 {
            mb.post(
                &plan,
                CrossShardMsg::Grant {
                    cpu,
                    space: cpu * 3,
                },
            );
            mb.post(
                &plan,
                CrossShardMsg::UpcallBatch {
                    cpu,
                    space: cpu + 1,
                    events: 2,
                },
            );
            mb.post(
                &plan,
                CrossShardMsg::IoComplete {
                    op: cpu,
                    space: cpu,
                },
            );
        }
        let s = mb.stats();
        assert_eq!(s.total_cross(), 0);
        assert_eq!(s.total(), 18);
        assert_eq!(s.grants_same, 6);
    }

    #[test]
    fn classification_follows_the_plan() {
        // 2 shards over 6 CPUs: CPUs 0-2 on shard 0, 3-5 on shard 1;
        // spaces stripe even→0, odd→1.
        let plan = ShardPlan::new(2, 6, SimDuration::from_micros(15));
        let mut mb = Mailbox::default();
        mb.post(&plan, CrossShardMsg::Grant { cpu: 0, space: 2 }); // same
        mb.post(&plan, CrossShardMsg::Grant { cpu: 0, space: 1 }); // cross
        mb.post(
            &plan,
            CrossShardMsg::UpcallBatch {
                cpu: 4,
                space: 1,
                events: 1,
            },
        ); // same (shard 1 both)
        mb.post(&plan, CrossShardMsg::IoComplete { op: 0, space: 2 }); // same (lane 0)
        mb.post(&plan, CrossShardMsg::IoComplete { op: 1, space: 3 }); // cross
        let s = mb.stats();
        assert_eq!((s.grants_same, s.grants_cross), (1, 1));
        assert_eq!((s.upcalls_same, s.upcalls_cross), (1, 0));
        assert_eq!((s.io_same, s.io_cross), (1, 1));
        assert!(s.summary_line().contains("grants 1/2 cross"));
    }
}
