//! The CPU dispatch loop: segments, preemption, and thread placement.

use crate::config::SchedMode;
use crate::exec::{Effect, Micro, Running, Seg};
use crate::ids::KtId;
use crate::kernel::{Event, Inflight, Kernel};
use crate::kthread::KtState;
use crate::space::SpaceKind;
use crate::upcall::{SavedContext, WorkKind};
use sa_sim::{SimDuration, TraceEvent};

/// Safety valve: this many zero-time dispatch-loop iterations on one CPU at
/// one instant means a runtime or body is livelocked.
const LIVELOCK_LIMIT: u32 = 100_000;

impl Kernel {
    /// Processes completion of the in-flight segment on `cpu`.
    pub(crate) fn on_seg_done(&mut self, cpu: usize) {
        let inf = self.cpus[cpu]
            .inflight
            .take()
            .expect("SegDone with no in-flight segment");
        // Timeline slice for the exporters; emitted at completion so a
        // preempted remainder never appears (the `is_enabled` guard keeps
        // the unit lookup off the disabled hot path).
        if self.trace.is_enabled() {
            let space = match self.cpus[cpu].running {
                Running::Kt(kt) => Some(self.kts.hot[kt.index()].space.0),
                Running::Act(a) => Some(self.acts[a.index()].space.0),
                Running::Idle => None,
            };
            let kind = if inf.seg.preemptible {
                inf.seg.kind.name()
            } else {
                "kernel"
            };
            self.trace.event(self.q.now(), || TraceEvent::SegRun {
                cpu: cpu as u32,
                space,
                kind,
                dur: inf.seg.dur,
            });
        }
        self.charge_seg(cpu, inf.seg, inf.seg.dur);
        self.advance_cpu(cpu);
    }

    /// Charges `dur` of `seg`'s work to the unit's space and to the
    /// time-attribution ledger (full completions and split remainders
    /// both come through here, so the ledger sees every occupied
    /// nanosecond exactly once).
    pub(crate) fn charge_seg(&mut self, cpu: usize, seg: Seg, dur: SimDuration) {
        let space = match self.cpus[cpu].running {
            Running::Kt(kt) => Some(self.kts.hot[kt.index()].space),
            Running::Act(a) => Some(self.acts[a.index()].space),
            Running::Idle => None,
        };
        self.charge_cpu(cpu, space.map(|s| s.index()), seg.ledger_state(), dur);
        if let Some(s) = space {
            if seg.preemptible {
                self.spaces[s.index()].metrics.charge(seg.kind, dur);
            } else {
                self.spaces[s.index()].metrics.charge_kernel(dur);
            }
        }
    }

    /// The dispatch loop: drains effects and starts the next segment.
    pub(crate) fn advance_cpu(&mut self, cpu: usize) {
        debug_assert!(self.cpus[cpu].inflight.is_none());
        let mut guard = 0u32;
        loop {
            guard += 1;
            assert!(
                guard < LIVELOCK_LIMIT,
                "dispatch livelock on cpu{cpu} at {} running {:?}",
                self.q.now(),
                self.cpus[cpu].running
            );
            // Honour a deferred reallocation at this safe boundary.
            if self.cpus[cpu].realloc_pending && self.cpu_at_boundary_preemptible(cpu) {
                self.cpus[cpu].realloc_pending = false;
                self.rebalance();
                continue;
            }
            match self.cpus[cpu].running {
                Running::Idle => {
                    self.cpu_find_work(cpu);
                    if matches!(self.cpus[cpu].running, Running::Idle) {
                        return; // genuinely idle
                    }
                    continue;
                }
                Running::Kt(kt) => {
                    // Honour a deferred time-slice preemption.
                    if self.kts.hot[kt.index()].pending_preempt {
                        self.kts.hot[kt.index()].pending_preempt = false;
                        self.preempt_kt_to_queue(cpu, kt);
                        continue;
                    }
                    match self.kts.cold[kt.index()].pipeline.pop_front() {
                        Some(Micro::Seg(seg)) => {
                            self.start_seg(cpu, seg);
                            return;
                        }
                        Some(Micro::Eff(eff)) => {
                            self.apply_effect(cpu, eff);
                            continue;
                        }
                        None => {
                            if let Some(seg) = self.refill_kt(cpu, kt) {
                                self.start_seg(cpu, seg);
                                return;
                            }
                            continue;
                        }
                    }
                }
                Running::Act(a) => match self.acts[a.index()].pipeline.pop_front() {
                    Some(Micro::Seg(seg)) => {
                        self.start_seg(cpu, seg);
                        return;
                    }
                    Some(Micro::Eff(eff)) => {
                        self.apply_effect(cpu, eff);
                        continue;
                    }
                    None => {
                        if let Some(seg) = self.refill_act(cpu, a) {
                            self.start_seg(cpu, seg);
                            return;
                        }
                        continue;
                    }
                },
            }
        }
    }

    /// True if the unit on `cpu` can be reallocated at this boundary
    /// (not mid-upcall-prologue or mid-kernel-path).
    fn cpu_at_boundary_preemptible(&self, cpu: usize) -> bool {
        match self.cpus[cpu].running {
            Running::Idle => true,
            Running::Kt(_) => true,
            Running::Act(a) => {
                !self.acts[a.index()].in_upcall && self.acts[a.index()].pipeline.is_empty()
            }
        }
    }

    /// Starts `seg` on `cpu`.
    pub(crate) fn start_seg(&mut self, cpu: usize, seg: Seg) {
        self.end_idle(cpu);
        if self.cpus[cpu].open_grant.is_some() && seg.kind == WorkKind::UserWork {
            // First user work since the grant: the grant-latency chain
            // is complete (the marker is only set while the decision log
            // is on).
            let d = self.cpus[cpu].open_grant.take().unwrap();
            self.note_first_dispatch(d);
        }
        self.metrics.segs.inc();
        let now = self.q.now();
        let done_at = now + seg.dur;
        let gen = self.cpus[cpu].gen;
        let token = self.sched_ev(done_at, Event::SegDone { cpu, gen });
        self.cpus[cpu].inflight = Some(Inflight {
            seg,
            started: now,
            token,
        });
    }

    /// Finds work for an idle CPU.
    fn cpu_find_work(&mut self, cpu: usize) {
        match self.cfg.sched {
            SchedMode::TopazNative => {
                if let Some(kt) = self.global_rq.pop() {
                    self.note_ready_wait(kt, -1);
                    self.dispatch_kt(cpu, kt);
                }
            }
            SchedMode::SaAllocator => {
                let Some(space) = self.cpus[cpu].assigned else {
                    return; // unassigned CPUs get work only via the allocator
                };
                if self.spaces[space.index()].done {
                    self.release_cpu(cpu);
                    self.rebalance();
                    return;
                }
                match &self.spaces[space.index()].kind {
                    SpaceKind::KernelDirect { .. } | SpaceKind::UserOnKt { .. } => {
                        if let Some(kt) = self.spaces[space.index()].ready.pop() {
                            self.note_ready_wait(kt, -1);
                            self.dispatch_kt(cpu, kt);
                        } else {
                            // Nothing runnable in this space: hand the CPU
                            // back for reallocation.
                            self.release_cpu(cpu);
                            self.rebalance();
                        }
                    }
                    SpaceKind::UserOnSa => {
                        // An SA space's CPU never sits idle in the kernel:
                        // blocking paths carry their own upcall, so reaching
                        // here means the space is not using the processor.
                        self.release_cpu(cpu);
                        self.rebalance();
                    }
                }
            }
        }
    }

    /// Puts `kt` on `cpu` and begins executing it.
    pub(crate) fn dispatch_kt(&mut self, cpu: usize, kt: KtId) {
        debug_assert!(matches!(self.cpus[cpu].running, Running::Idle));
        debug_assert_eq!(self.kts.hot[kt.index()].state, KtState::Ready);
        self.end_idle(cpu);
        self.kts.hot[kt.index()].state = KtState::Running(cpu as u16);
        self.cpus[cpu].running = Running::Kt(kt);
        let space = self.kts.hot[kt.index()].space;
        self.spaces[space.index()].metrics.kt_switches.inc();
        self.trace.event(self.q.now(), || TraceEvent::Dispatch {
            cpu: cpu as u32,
            space: Some(space.0),
            unit: "kt",
        });
        self.arm_quantum(cpu, kt);
    }

    /// Arms the time-slice timer for a kernel thread, if time slicing
    /// applies (it never applies to daemons — they sleep voluntarily).
    fn arm_quantum(&mut self, cpu: usize, kt: KtId) {
        if matches!(
            self.kts.hot[kt.index()].flavor,
            crate::exec::KtFlavor::Daemon(_)
        ) {
            return;
        }
        let gen = self.cpus[cpu].gen;
        let at = self.q.now() + self.cost.quantum;
        let tok = self.sched_ev(at, Event::QuantumExpire { cpu, gen });
        if let Some(old) = self.cpus[cpu].quantum_tok.replace(tok) {
            self.q.cancel(old);
        }
    }

    /// Time-slice expiry: preempt if a peer of equal-or-higher priority
    /// waits in this CPU's scheduling domain.
    pub(crate) fn on_quantum_expire(&mut self, cpu: usize) {
        self.cpus[cpu].quantum_tok = None;
        let Running::Kt(kt) = self.cpus[cpu].running else {
            return;
        };
        let prio = self.kts.hot[kt.index()].prio;
        let contended = match self.cfg.sched {
            SchedMode::TopazNative => self.global_rq.has_at_least(prio),
            SchedMode::SaAllocator => {
                let space = self.kts.hot[kt.index()].space;
                self.spaces[space.index()].ready.has_at_least(prio)
            }
        };
        if !contended {
            self.arm_quantum(cpu, kt);
            return;
        }
        if let Some(inf) = &self.cpus[cpu].inflight {
            if inf.seg.preemptible {
                self.preempt_kt_to_queue(cpu, kt);
                self.advance_cpu(cpu);
            } else {
                self.kts.hot[kt.index()].pending_preempt = true;
            }
        } else {
            // Between segments (we are inside another handler); defer.
            self.kts.hot[kt.index()].pending_preempt = true;
        }
    }

    /// Removes `kt` from `cpu` (splitting any in-flight segment), requeues
    /// it, and leaves the CPU idle.
    pub(crate) fn preempt_kt_to_queue(&mut self, cpu: usize, kt: KtId) {
        self.split_inflight_to_unit(cpu);
        self.bump_gen(cpu);
        // A VP preempted while spinning re-checks its condition when it is
        // resumed (the spin loop re-reads the lock word): drop the saved
        // spin remainder and let the runtime re-evaluate.
        if matches!(
            self.kts.hot[kt.index()].flavor,
            crate::exec::KtFlavor::Vp(_)
        ) {
            if let Some(Micro::Seg(seg)) = self.kts.cold[kt.index()].pipeline.front() {
                if matches!(seg.kind, WorkKind::SpinWait | WorkKind::IdleSpin) {
                    self.kts.cold[kt.index()].pipeline.pop_front();
                    self.kts.cold[kt.index()].resume = Some(crate::exec::ResumeWith::Fresh);
                }
            }
        }
        // Switch-in cost when the thread is later resumed.
        let ctx = Seg::kernel(self.cost.kt_ctx_switch);
        self.kts.cold[kt.index()]
            .pipeline
            .push_front(Micro::Seg(ctx));
        self.kts.hot[kt.index()].state = KtState::Ready;
        self.set_idle(cpu);
        let space = self.kts.hot[kt.index()].space;
        self.spaces[space.index()].metrics.preemptions.inc();
        self.trace.event(self.q.now(), || TraceEvent::KtPreempt {
            cpu: cpu as u32,
            kt: kt.0,
        });
        self.enqueue_ready(kt);
    }

    /// Saves the unfinished portion of the in-flight segment back onto the
    /// running unit's pipeline (kernel threads) or returns it (callers
    /// handling activations use [`Kernel::take_inflight_remainder`]).
    pub(crate) fn split_inflight_to_unit(&mut self, cpu: usize) {
        let Some(rem) = self.take_inflight_remainder(cpu) else {
            return;
        };
        match self.cpus[cpu].running {
            Running::Kt(kt) => {
                self.kts.cold[kt.index()]
                    .pipeline
                    .push_front(Micro::Seg(rem));
            }
            Running::Act(a) => {
                self.acts[a.index()].pipeline.push_front(Micro::Seg(rem));
            }
            Running::Idle => unreachable!("in-flight segment on an idle CPU"),
        }
    }

    /// Cancels the in-flight segment, charges the elapsed part, and returns
    /// the unfinished remainder (if any work remained).
    pub(crate) fn take_inflight_remainder(&mut self, cpu: usize) -> Option<Seg> {
        let inf = self.cpus[cpu].inflight.take()?;
        self.q.cancel(inf.token);
        let elapsed = self.q.now().since(inf.started);
        self.charge_seg(cpu, inf.seg, elapsed);
        let remaining = inf.seg.dur.saturating_sub(elapsed);
        if remaining.is_zero() {
            None
        } else {
            let mut seg = inf.seg;
            seg.dur = remaining;
            Some(seg)
        }
    }

    /// The saved "machine state" of the interrupted segment on `cpu`, for a
    /// Table 2 notification.
    pub(crate) fn saved_context_from_inflight(&mut self, cpu: usize) -> SavedContext {
        match self.take_inflight_remainder(cpu) {
            Some(seg) => SavedContext {
                cookie: seg.cookie,
                remaining: seg.dur,
                kind: seg.kind,
            },
            None => SavedContext::empty(),
        }
    }

    /// Makes `kt` runnable and tries to place it on a processor.
    pub(crate) fn make_runnable(&mut self, kt: KtId) {
        debug_assert_eq!(self.kts.hot[kt.index()].state, KtState::Ready);
        match self.cfg.sched {
            SchedMode::TopazNative => self.place_native(kt),
            SchedMode::SaAllocator => self.place_allocated(kt),
        }
    }

    /// Enqueues without placement (used when the CPU decision is deferred).
    pub(crate) fn enqueue_ready(&mut self, kt: KtId) {
        let prio = self.kts.hot[kt.index()].prio;
        self.note_ready_wait(kt, 1);
        match self.cfg.sched {
            SchedMode::TopazNative => self.global_rq.push(kt, prio),
            SchedMode::SaAllocator => {
                let space = self.kts.hot[kt.index()].space;
                self.spaces[space.index()].ready.push(kt, prio);
            }
        }
    }

    /// Native Topaz placement: idle CPU first, then preempt a lower-priority
    /// running thread, else queue.
    fn place_native(&mut self, kt: KtId) {
        if let Some(cpu) = self.find_idle_cpu() {
            self.dispatch_kt(cpu, kt);
            self.schedule_dispatch(cpu);
            return;
        }
        let prio = self.kts.hot[kt.index()].prio;
        if let Some(victim_cpu) = self.find_lower_prio_victim(prio) {
            self.note_ready_wait(kt, 1);
            self.global_rq.push(kt, prio);
            let Running::Kt(victim) = self.cpus[victim_cpu].running else {
                unreachable!("victim CPU not running a kernel thread");
            };
            let preemptible_now = self.cpus[victim_cpu]
                .inflight
                .as_ref()
                .is_some_and(|inf| inf.seg.preemptible);
            if preemptible_now {
                self.preempt_kt_to_queue(victim_cpu, victim);
                self.schedule_dispatch(victim_cpu);
            } else {
                self.kts.hot[victim.index()].pending_preempt = true;
            }
            return;
        }
        self.note_ready_wait(kt, 1);
        self.global_rq.push(kt, prio);
    }

    /// Allocator-mode placement: only this space's CPUs are eligible.
    fn place_allocated(&mut self, kt: KtId) {
        let space = self.kts.hot[kt.index()].space;
        let prio = self.kts.hot[kt.index()].prio;
        // An idle CPU already assigned to this space?
        for cpu in 0..self.cpus.len() {
            if self.cpus[cpu].assigned == Some(space)
                && matches!(self.cpus[cpu].running, Running::Idle)
                && self.cpus[cpu].inflight.is_none()
            {
                self.dispatch_kt(cpu, kt);
                self.schedule_dispatch(cpu);
                return;
            }
        }
        self.note_ready_wait(kt, 1);
        self.spaces[space.index()].ready.push(kt, prio);
        // Demand changed; the allocator may want to assign more CPUs.
        self.rebalance();
    }

    /// First idle CPU, if any.
    pub(crate) fn find_idle_cpu(&self) -> Option<usize> {
        (0..self.cpus.len()).find(|&c| {
            matches!(self.cpus[c].running, Running::Idle) && self.cpus[c].inflight.is_none()
        })
    }

    /// The running kernel thread with the lowest priority strictly below
    /// `prio` (native mode preemption victim).
    fn find_lower_prio_victim(&self, prio: u8) -> Option<usize> {
        let mut best: Option<(usize, u8)> = None;
        for cpu in 0..self.cpus.len() {
            if let Running::Kt(kt) = self.cpus[cpu].running {
                let p = self.kts.hot[kt.index()].prio;
                if p < prio && best.is_none_or(|(_, bp)| p < bp) {
                    best = Some((cpu, p));
                }
            }
        }
        best.map(|(c, _)| c)
    }

    /// Wakes a blocked kernel thread.
    pub(crate) fn wake_kt(&mut self, kt: KtId) {
        debug_assert!(
            matches!(self.kts.hot[kt.index()].state, KtState::Blocked(_)),
            "waking non-blocked {kt}: {:?}",
            self.kts.hot[kt.index()].state
        );
        if let KtState::Blocked(bk) = self.kts.hot[kt.index()].state {
            if let Some(wk) = bk.wait_kind() {
                let space = self.kts.hot[kt.index()].space;
                self.note_blocked_wait(space, wk, -1);
            }
        }
        self.kts.hot[kt.index()].state = KtState::Ready;
        let space = self.kts.hot[kt.index()].space;
        let now = self.q.now();
        self.trace.event(now, || sa_sim::TraceEvent::KtWake {
            space: space.0,
            kt: kt.0,
        });
        self.make_runnable(kt);
    }

    /// Applies one effect on the unit running on `cpu`.
    pub(crate) fn apply_effect(&mut self, cpu: usize, eff: Effect) {
        match self.cpus[cpu].running {
            Running::Kt(kt) => self.apply_effect_kt(cpu, kt, eff),
            Running::Act(a) => self.apply_effect_act(cpu, a, eff),
            Running::Idle => unreachable!("effect on idle CPU"),
        }
    }
}
