//! Kernel and per-space measurement.

use crate::upcall::WorkKind;
use sa_sim::stats::{Counter, Histogram};
use sa_sim::{SimDuration, SimTime, UpcallKind};

/// Per-space accounting.
#[derive(Debug, Default, Clone)]
pub struct SpaceMetrics {
    /// CPU nanoseconds by work classification.
    user_ns: u64,
    overhead_ns: u64,
    spin_ns: u64,
    idle_spin_ns: u64,
    upcall_ns: u64,
    /// Kernel-mode nanoseconds charged to this space's units.
    kernel_ns: u64,
    /// Upcall events delivered, indexed by [`UpcallKind`] — one slot per
    /// kind, so a new kind cannot silently go uncounted.
    pub upcalls_by_kind: [Counter; UpcallKind::COUNT],
    /// Upcall deliveries total (batches, not events).
    pub upcall_batches: Counter,
    /// Latency from an upcall event being raised (queued for the space)
    /// to its delivery at user level — the Table 3 cost, as a
    /// distribution rather than a single mean.
    pub upcall_delivery: Histogram,
    /// Time activations spend blocked in the kernel (block → unblock).
    pub block_unblock: Histogram,
    /// Processor preemptions suffered.
    pub preemptions: Counter,
    /// Kernel traps made by this space's units.
    pub traps: Counter,
    /// Disk operations issued.
    pub disk_ops: Counter,
    /// Page faults taken.
    pub page_faults: Counter,
    /// Activations allocated fresh.
    pub acts_fresh: Counter,
    /// Activations reused from the recycle cache (§4.3).
    pub acts_cached: Counter,
    /// Kernel context switches of this space's kernel threads.
    pub kt_switches: Counter,
}

impl SpaceMetrics {
    /// Delivered upcall events of the given kind.
    pub fn upcalls(&self, kind: UpcallKind) -> u64 {
        self.upcalls_by_kind[kind.index()].get()
    }

    /// Counts one delivered upcall event of the given kind.
    pub(crate) fn count_upcall(&mut self, kind: UpcallKind) {
        self.upcalls_by_kind[kind.index()].inc();
    }

    /// Charges `d` of CPU time classified as `kind`.
    pub(crate) fn charge(&mut self, kind: WorkKind, d: SimDuration) {
        let ns = d.as_nanos();
        match kind {
            WorkKind::UserWork => self.user_ns += ns,
            WorkKind::RuntimeOverhead => self.overhead_ns += ns,
            WorkKind::SpinWait => self.spin_ns += ns,
            WorkKind::IdleSpin => self.idle_spin_ns += ns,
            WorkKind::UpcallWork => self.upcall_ns += ns,
        }
    }

    /// Charges `d` of kernel-mode time.
    pub(crate) fn charge_kernel(&mut self, d: SimDuration) {
        self.kernel_ns += d.as_nanos();
    }

    /// Pure application compute time.
    pub fn user_time(&self) -> SimDuration {
        SimDuration::from_nanos(self.user_ns)
    }

    /// Thread-package overhead time.
    pub fn overhead_time(&self) -> SimDuration {
        SimDuration::from_nanos(self.overhead_ns)
    }

    /// Time burned spinning on held locks.
    pub fn spin_time(&self) -> SimDuration {
        SimDuration::from_nanos(self.spin_ns)
    }

    /// Time burned in the user-level idle loop.
    pub fn idle_spin_time(&self) -> SimDuration {
        SimDuration::from_nanos(self.idle_spin_ns)
    }

    /// Time spent processing upcalls at user level.
    pub fn upcall_time(&self) -> SimDuration {
        SimDuration::from_nanos(self.upcall_ns)
    }

    /// Kernel-mode time charged to this space.
    pub fn kernel_time(&self) -> SimDuration {
        SimDuration::from_nanos(self.kernel_ns)
    }
}

/// Whole-kernel accounting.
#[derive(Debug, Default, Clone)]
pub struct KernelMetrics {
    /// Events processed by the run loop.
    pub events: Counter,
    /// Segments started on CPUs.
    pub segs: Counter,
    /// CPU-idle integral support: total idle nanoseconds across CPUs.
    idle_ns: u64,
    /// Processor reallocations performed by the allocator.
    pub reallocations: Counter,
    /// Allocator policy evaluations.
    pub rebalances: Counter,
}

impl KernelMetrics {
    pub(crate) fn charge_idle(&mut self, d: SimDuration) {
        self.idle_ns += d.as_nanos();
    }

    /// Total CPU idle time summed over processors.
    pub fn idle_time(&self) -> SimDuration {
        SimDuration::from_nanos(self.idle_ns)
    }
}

/// Outcome of a kernel run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Virtual time at which the run loop stopped.
    pub end: SimTime,
    /// True if the run hit its hard time limit before all spaces finished.
    pub timed_out: bool,
    /// True if the event queue drained with unfinished spaces (deadlock).
    pub deadlocked: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_routes_by_kind() {
        let mut m = SpaceMetrics::default();
        m.charge(WorkKind::UserWork, SimDuration::from_micros(5));
        m.charge(WorkKind::SpinWait, SimDuration::from_micros(3));
        m.charge(WorkKind::SpinWait, SimDuration::from_micros(2));
        assert_eq!(m.user_time().as_micros(), 5);
        assert_eq!(m.spin_time().as_micros(), 5);
        assert_eq!(m.overhead_time(), SimDuration::ZERO);
    }

    #[test]
    fn upcall_counters_index_by_kind() {
        let mut m = SpaceMetrics::default();
        m.count_upcall(UpcallKind::Blocked);
        m.count_upcall(UpcallKind::Blocked);
        m.count_upcall(UpcallKind::Unblocked);
        assert_eq!(m.upcalls(UpcallKind::Blocked), 2);
        assert_eq!(m.upcalls(UpcallKind::Unblocked), 1);
        assert_eq!(m.upcalls(UpcallKind::AddProcessor), 0);
        assert_eq!(m.upcalls(UpcallKind::Preempted), 0);
    }

    #[test]
    fn kernel_idle_accumulates() {
        let mut k = KernelMetrics::default();
        k.charge_idle(SimDuration::from_micros(10));
        k.charge_idle(SimDuration::from_micros(5));
        assert_eq!(k.idle_time().as_micros(), 15);
    }
}
