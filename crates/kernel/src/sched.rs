//! Kernel-thread ready queues.
//!
//! In [`crate::config::SchedMode::TopazNative`] there is one global queue
//! and the scheduler is oblivious to address spaces — the behaviour §2.2
//! criticizes. Under the processor allocator, each kernel-direct space has
//! its own queue and time-slices only within its allocation (§4.1).
//!
//! ## Hot-path design
//!
//! The queue keeps FIFO-within-priority order in per-level `VecDeque`s,
//! plus two indexes that keep every operation cheap:
//!
//! - a per-`KtId` **membership table** (`member`) recording the level and a
//!   push stamp, making [`ReadyQueue::remove`] O(1): the entry is
//!   tombstoned in place and reaped when a pop reaches it. A stamp (not
//!   just the level) distinguishes a live re-push from an old tombstone of
//!   the same thread at the same level;
//! - a cached **level bitmask** (`mask`), one bit per non-empty priority
//!   level, so [`ReadyQueue::max_prio`] and [`ReadyQueue::has_at_least`]
//!   are a handful of word operations instead of a scan over all levels.
//!   These run on every dispatch/preemption decision, which made the old
//!   linear scans the scheduler's hottest loop.

use crate::ids::KtId;
use std::collections::VecDeque;

/// Number of 64-bit words covering the full `u8` priority range.
const MASK_WORDS: usize = 4;

/// A priority ready queue: FIFO within each priority, higher priority first.
#[derive(Debug, Default)]
pub(crate) struct ReadyQueue {
    /// Sparse per-priority queues; index = priority. Entries carry the
    /// push stamp that must match `member` to be live.
    levels: Vec<VecDeque<(KtId, u64)>>,
    /// `member[kt] = Some((prio, stamp))` while `kt` is queued.
    member: Vec<Option<(u8, u64)>>,
    /// Live entries per level (excludes tombstones).
    live: Vec<usize>,
    /// Bit `p` set ⇔ `live[p] > 0`.
    mask: [u64; MASK_WORDS],
    next_stamp: u64,
    len: usize,
}

impl ReadyQueue {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn set_bit(&mut self, prio: u8) {
        self.mask[(prio >> 6) as usize] |= 1u64 << (prio & 63);
    }

    #[inline]
    fn clear_bit(&mut self, prio: u8) {
        self.mask[(prio >> 6) as usize] &= !(1u64 << (prio & 63));
    }

    /// Enqueues at the tail of its priority level.
    pub(crate) fn push(&mut self, kt: KtId, prio: u8) {
        let idx = prio as usize;
        if self.levels.len() <= idx {
            self.levels.resize_with(idx + 1, VecDeque::new);
            self.live.resize(idx + 1, 0);
        }
        if self.member.len() <= kt.index() {
            self.member.resize(kt.index() + 1, None);
        }
        debug_assert!(
            self.member[kt.index()].is_none(),
            "{kt} pushed while already queued"
        );
        if self.member[kt.index()].is_some() {
            // Release-mode safety net: a double push tombstones the old
            // entry so the live counts stay consistent.
            self.remove(kt);
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.member[kt.index()] = Some((prio, stamp));
        self.levels[idx].push_back((kt, stamp));
        self.live[idx] += 1;
        self.set_bit(prio);
        self.len += 1;
    }

    /// Dequeues the highest-priority, longest-waiting thread.
    pub(crate) fn pop(&mut self) -> Option<KtId> {
        let prio = self.max_prio()?;
        let idx = prio as usize;
        while let Some((kt, stamp)) = self.levels[idx].pop_front() {
            // Tombstones (removed or re-pushed entries) have a stale stamp.
            if self.member[kt.index()] != Some((prio, stamp)) {
                continue;
            }
            self.member[kt.index()] = None;
            self.live[idx] -= 1;
            if self.live[idx] == 0 {
                self.clear_bit(prio);
                self.levels[idx].clear(); // reap any trailing tombstones
            }
            self.len -= 1;
            return Some(kt);
        }
        unreachable!("mask bit set for a level with no live entries");
    }

    /// Highest priority currently queued.
    pub(crate) fn max_prio(&self) -> Option<u8> {
        for w in (0..MASK_WORDS).rev() {
            if self.mask[w] != 0 {
                let top = 63 - self.mask[w].leading_zeros() as usize;
                return Some((w * 64 + top) as u8);
            }
        }
        None
    }

    /// True if a thread of priority `>= prio` is waiting.
    pub(crate) fn has_at_least(&self, prio: u8) -> bool {
        let word = (prio >> 6) as usize;
        let above_in_word = self.mask[word] >> (prio & 63) != 0;
        above_in_word || self.mask[word + 1..].iter().any(|&w| w != 0)
    }

    /// Removes a specific thread (teardown paths) in O(1): the queue entry
    /// is tombstoned and reaped lazily by [`ReadyQueue::pop`].
    pub(crate) fn remove(&mut self, kt: KtId) -> bool {
        let Some(Some((prio, _))) = self.member.get(kt.index()).copied() else {
            return false;
        };
        self.member[kt.index()] = None;
        let idx = prio as usize;
        self.live[idx] -= 1;
        if self.live[idx] == 0 {
            self.clear_bit(prio);
            self.levels[idx].clear();
        }
        self.len -= 1;
        true
    }

    /// Number of queued threads.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_priority() {
        let mut q = ReadyQueue::new();
        q.push(KtId(1), 1);
        q.push(KtId(2), 1);
        assert_eq!(q.pop(), Some(KtId(1)));
        assert_eq!(q.pop(), Some(KtId(2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn higher_priority_first() {
        let mut q = ReadyQueue::new();
        q.push(KtId(1), 1);
        q.push(KtId(2), 5);
        q.push(KtId(3), 1);
        assert_eq!(q.pop(), Some(KtId(2)));
        assert_eq!(q.pop(), Some(KtId(1)));
        assert_eq!(q.pop(), Some(KtId(3)));
    }

    #[test]
    fn max_prio_and_has_at_least() {
        let mut q = ReadyQueue::new();
        assert_eq!(q.max_prio(), None);
        q.push(KtId(1), 2);
        assert_eq!(q.max_prio(), Some(2));
        assert!(q.has_at_least(2));
        assert!(q.has_at_least(1));
        assert!(!q.has_at_least(3));
    }

    #[test]
    fn remove_specific() {
        let mut q = ReadyQueue::new();
        q.push(KtId(1), 1);
        q.push(KtId(2), 1);
        assert!(q.remove(KtId(1)));
        assert!(!q.remove(KtId(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some(KtId(2)));
        assert!(q.is_empty());
    }

    #[test]
    fn remove_then_repush_same_level_keeps_fifo() {
        let mut q = ReadyQueue::new();
        q.push(KtId(1), 1);
        q.push(KtId(2), 1);
        assert!(q.remove(KtId(1)));
        // Re-push at the same level: kt1 must now be *behind* kt2, even
        // though its tombstone sits ahead of kt2 in the deque.
        q.push(KtId(1), 1);
        assert_eq!(q.pop(), Some(KtId(2)));
        assert_eq!(q.pop(), Some(KtId(1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn remove_then_repush_other_level() {
        let mut q = ReadyQueue::new();
        q.push(KtId(1), 1);
        q.push(KtId(2), 3);
        assert!(q.remove(KtId(2)));
        q.push(KtId(2), 0);
        assert_eq!(q.max_prio(), Some(1));
        assert_eq!(q.pop(), Some(KtId(1)));
        assert_eq!(q.pop(), Some(KtId(2)));
        assert!(q.is_empty());
    }

    #[test]
    fn high_priority_levels_use_upper_mask_words() {
        let mut q = ReadyQueue::new();
        q.push(KtId(1), 200);
        q.push(KtId(2), 64);
        q.push(KtId(3), 0);
        assert_eq!(q.max_prio(), Some(200));
        assert!(q.has_at_least(200));
        assert!(q.has_at_least(65));
        assert!(!q.has_at_least(201));
        assert_eq!(q.pop(), Some(KtId(1)));
        assert_eq!(q.max_prio(), Some(64));
        assert_eq!(q.pop(), Some(KtId(2)));
        assert_eq!(q.pop(), Some(KtId(3)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.max_prio(), None);
    }

    #[test]
    fn len_tracks_removals_and_pops() {
        let mut q = ReadyQueue::new();
        for i in 0..10 {
            q.push(KtId(i), (i % 3) as u8);
        }
        assert_eq!(q.len(), 10);
        assert!(q.remove(KtId(4)));
        assert!(q.remove(KtId(7)));
        assert_eq!(q.len(), 8);
        let mut popped = Vec::new();
        while let Some(kt) = q.pop() {
            popped.push(kt);
        }
        assert_eq!(popped.len(), 8);
        assert!(!popped.contains(&KtId(4)));
        assert!(!popped.contains(&KtId(7)));
    }
}
