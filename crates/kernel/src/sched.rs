//! Kernel-thread ready queues.
//!
//! In [`crate::config::SchedMode::TopazNative`] there is one global queue
//! and the scheduler is oblivious to address spaces — the behaviour §2.2
//! criticizes. Under the processor allocator, each kernel-direct space has
//! its own queue and time-slices only within its allocation (§4.1).

use crate::ids::KtId;
use std::collections::VecDeque;

/// A priority ready queue: FIFO within each priority, higher priority first.
#[derive(Debug, Default)]
pub(crate) struct ReadyQueue {
    /// Sparse per-priority queues; index = priority.
    levels: Vec<VecDeque<KtId>>,
    len: usize,
}

impl ReadyQueue {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Enqueues at the tail of its priority level.
    pub(crate) fn push(&mut self, kt: KtId, prio: u8) {
        let idx = prio as usize;
        if self.levels.len() <= idx {
            self.levels.resize_with(idx + 1, VecDeque::new);
        }
        self.levels[idx].push_back(kt);
        self.len += 1;
    }

    /// Dequeues the highest-priority, longest-waiting thread.
    pub(crate) fn pop(&mut self) -> Option<KtId> {
        for level in self.levels.iter_mut().rev() {
            if let Some(kt) = level.pop_front() {
                self.len -= 1;
                return Some(kt);
            }
        }
        None
    }

    /// Highest priority currently queued.
    pub(crate) fn max_prio(&self) -> Option<u8> {
        for (i, level) in self.levels.iter().enumerate().rev() {
            if !level.is_empty() {
                return Some(i as u8);
            }
        }
        None
    }

    /// True if a thread of priority `>= prio` is waiting.
    pub(crate) fn has_at_least(&self, prio: u8) -> bool {
        self.max_prio().is_some_and(|p| p >= prio)
    }

    /// Removes a specific thread (rare: teardown paths).
    pub(crate) fn remove(&mut self, kt: KtId) -> bool {
        for level in self.levels.iter_mut() {
            if let Some(pos) = level.iter().position(|&k| k == kt) {
                level.remove(pos);
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Number of queued threads.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_priority() {
        let mut q = ReadyQueue::new();
        q.push(KtId(1), 1);
        q.push(KtId(2), 1);
        assert_eq!(q.pop(), Some(KtId(1)));
        assert_eq!(q.pop(), Some(KtId(2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn higher_priority_first() {
        let mut q = ReadyQueue::new();
        q.push(KtId(1), 1);
        q.push(KtId(2), 5);
        q.push(KtId(3), 1);
        assert_eq!(q.pop(), Some(KtId(2)));
        assert_eq!(q.pop(), Some(KtId(1)));
        assert_eq!(q.pop(), Some(KtId(3)));
    }

    #[test]
    fn max_prio_and_has_at_least() {
        let mut q = ReadyQueue::new();
        assert_eq!(q.max_prio(), None);
        q.push(KtId(1), 2);
        assert_eq!(q.max_prio(), Some(2));
        assert!(q.has_at_least(2));
        assert!(q.has_at_least(1));
        assert!(!q.has_at_least(3));
    }

    #[test]
    fn remove_specific() {
        let mut q = ReadyQueue::new();
        q.push(KtId(1), 1);
        q.push(KtId(2), 1);
        assert!(q.remove(KtId(1)));
        assert!(!q.remove(KtId(1)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some(KtId(2)));
        assert!(q.is_empty());
    }
}
