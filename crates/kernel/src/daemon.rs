//! Kernel daemon threads (§5.3).
//!
//! "The Topaz operating system has several daemon threads which wake up
//! periodically, execute for a short time, and then go back to sleep.
//! Because our system explicitly allocates processors to address spaces,
//! these daemon threads cause preemptions only when there are no idle
//! processors available; this is not true with the native Topaz scheduler."
//!
//! Daemons live in an internal, maximum-priority address space. Under the
//! native scheduler they preempt application kernel threads directly; under
//! the processor allocator their space's demand spikes briefly and the
//! allocator prefers idle processors.

use crate::config::KernelFlavor;
use crate::exec::{Effect, KtFlavor, Micro, Seg};
use crate::ids::{AsId, KtId};
use crate::kernel::{Event, Kernel, DAEMON_PRIO};
use crate::kthread::{BlockKind, KtState};
use crate::metrics::SpaceMetrics;
use crate::sched::ReadyQueue;
use crate::space::{Residency, SaState, Space, SpaceKind};
use crate::upcall::WorkKind;
use sa_sim::{SimDuration, TraceEvent};

/// Kernel-side daemon bookkeeping.
pub(crate) struct DaemonState {
    pub kt: KtId,
    pub spec: crate::config::DaemonSpec,
}

impl Kernel {
    /// Creates the daemon space and threads (called once from `Kernel::new`).
    pub(crate) fn init_daemons(&mut self) {
        if self.cfg.daemons.is_empty() {
            return;
        }
        debug_assert!(self.spaces.is_empty(), "daemons must be created first");
        let id = AsId(0);
        self.spaces.push(Space {
            id,
            name: "kernel-daemons".into(),
            priority: DAEMON_PRIO,
            kind: SpaceKind::KernelDirect {
                flavor: KernelFlavor::TopazThreads,
            },
            runtime: None,
            sa: SaState::default(),
            ready: ReadyQueue::new(),
            klocks: Default::default(),
            kcvs: Default::default(),
            kchans: Default::default(),
            residency: Residency::new(None),
            runtime_pages_resident: true,
            live_kthreads: 0,
            assigned_cpus: 0,
            started: true,
            done: false,
            completed_at: None,
            started_at: None,
            is_daemon_space: true,
            dc: crate::interp::DirectCosts::resolve(
                &self.cost,
                &SpaceKind::KernelDirect {
                    flavor: KernelFlavor::TopazThreads,
                },
            ),
            metrics: SpaceMetrics::default(),
        });
        let specs = self.cfg.daemons.clone();
        for (i, spec) in specs.iter().enumerate() {
            let kt = self.new_kthread(id, DAEMON_PRIO, KtFlavor::Daemon(i as u32));
            self.kts.hot[kt.index()].state = KtState::Blocked(BlockKind::DaemonSleep);
            self.daemons.push(DaemonState { kt, spec: *spec });
            // Stagger first wakeups across the period.
            let first = spec
                .period
                .saturating_mul((i + 1) as u64)
                .div(specs.len() as u64 + 1);
            self.sched_ev(
                sa_sim::SimTime::ZERO + first,
                Event::DaemonWake { idx: i as u32 },
            );
        }
        self.spaces[0].live_kthreads = specs.len() as u32;
    }

    /// A daemon's timer fired: make it runnable.
    pub(crate) fn on_daemon_wake(&mut self, idx: usize) {
        let kt = self.daemons[idx].kt;
        if !matches!(
            self.kts.hot[kt.index()].state,
            KtState::Blocked(BlockKind::DaemonSleep)
        ) {
            // Still running its previous burst (overload); try again later.
            self.schedule_next_daemon_wake(idx);
            return;
        }
        self.trace.event(self.q.now(), || TraceEvent::DaemonWake {
            daemon: idx as u32,
        });
        self.wake_kt(kt);
    }

    /// Refills a daemon thread: one burst, then back to sleep.
    pub(crate) fn refill_daemon(&mut self, kt: KtId) {
        let idx = match self.kts.hot[kt.index()].flavor {
            KtFlavor::Daemon(i) => i as usize,
            _ => unreachable!("refill_daemon on non-daemon"),
        };
        let burst = self.daemons[idx].spec.burst;
        let seg = Seg {
            dur: burst,
            preemptible: true,
            kind: WorkKind::UserWork,
            cookie: 0,
        };
        let p = &mut self.kts.cold[kt.index()].pipeline;
        p.push_back(Micro::Seg(seg));
        p.push_back(Micro::Eff(Effect::DaemonSleep));
    }

    /// Puts the daemon back to sleep and schedules the next wakeup.
    pub(crate) fn eff_daemon_sleep(&mut self, cpu: usize, kt: KtId) {
        let idx = match self.kts.hot[kt.index()].flavor {
            KtFlavor::Daemon(i) => i as usize,
            _ => unreachable!("daemon sleep on non-daemon"),
        };
        self.block_kt(cpu, kt, BlockKind::DaemonSleep);
        self.schedule_next_daemon_wake(idx);
        self.rebalance();
    }

    fn schedule_next_daemon_wake(&mut self, idx: usize) {
        let period = self.daemons[idx].spec.period;
        // Jitter the period (exponential around the mean) so daemons drift
        // relative to each other, as real daemons do.
        let jittered =
            SimDuration::from_nanos((self.rng.exp(period.as_nanos() as f64)).max(1.0) as u64)
                .min(period.saturating_mul(4));
        self.sched_ev(
            self.q.now() + jittered,
            Event::DaemonWake { idx: idx as u32 },
        );
    }
}
