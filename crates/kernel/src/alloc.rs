//! The processor allocator (§4.1).
//!
//! Space-shares processors among address spaces while respecting priorities
//! and guaranteeing that no processor idles if some space has work:
//! "Processors are divided evenly among address spaces; if some address
//! spaces do not need all of the processors in their share, those
//! processors are divided evenly among the remainder."
//!
//! Kernel-direct (Topaz) spaces compete on the same footing as
//! scheduler-activation spaces: "there is no need for static partitioning
//! of processors." Their demand is read from internal kernel structures;
//! SA spaces' demand comes from their Table 3 hints.

use crate::config::SchedMode;
use crate::exec::Running;
use crate::ids::AsId;
use crate::kernel::{Event, Kernel};
use crate::space::SpaceKind;
use crate::upcall::UpcallEvent;
use sa_sim::TraceEvent;

impl Kernel {
    /// A space's current processor demand.
    pub(crate) fn space_demand(&self, id: AsId) -> u32 {
        let s = &self.spaces[id.index()];
        if !s.started || s.done {
            return 0;
        }
        match &s.kind {
            SpaceKind::KernelDirect { .. } | SpaceKind::UserOnKt { .. } => {
                // Internal kernel data: runnable + running threads.
                let running = self
                    .cpus
                    .iter()
                    .filter(|c| {
                        c.assigned == Some(id)
                            && matches!(c.running, Running::Kt(kt)
                                if self.kts[kt.index()].space == id)
                    })
                    .count() as u32;
                s.ready.len() as u32 + running
            }
            SpaceKind::UserOnSa => {
                if !s.runtime_pages_resident {
                    // Cannot enter the space until its manager pages it in.
                    0
                } else {
                    // The Table-3 hints; a pending notification always
                    // justifies at least one processor.
                    let base = s.sa.desired;
                    if s.sa.pending_events.is_empty() {
                        base
                    } else {
                        base.max(1)
                    }
                }
            }
        }
    }

    /// Computes the target allocation: priorities strictly dominate, and
    /// within a priority level processors are divided evenly, with unused
    /// shares redistributed. When the division leaves a remainder, the
    /// extra processors go to a rotating subset of the claimants — the
    /// paper's "processors are time-sliced only if the number of available
    /// processors is not an integer multiple of the number of address
    /// spaces (at the same priority) that want them" (§4.1).
    pub(crate) fn compute_targets(&self) -> Vec<u32> {
        self.compute_targets_inner().0
    }

    /// As [`Kernel::compute_targets`], also reporting whether a remainder
    /// exists (so the rotation timer knows to keep running).
    pub(crate) fn compute_targets_inner(&self) -> (Vec<u32>, bool) {
        let n = self.spaces.len();
        let mut targets = vec![0u32; n];
        let mut has_remainder = false;
        let mut avail = self.cpus.len() as u32;
        // Group space indices by priority, descending.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            self.spaces[b]
                .priority
                .cmp(&self.spaces[a].priority)
                .then(a.cmp(&b))
        });
        let mut i = 0;
        while i < order.len() && avail > 0 {
            let prio = self.spaces[order[i]].priority;
            let mut group: Vec<(usize, u32)> = Vec::new();
            while i < order.len() && self.spaces[order[i]].priority == prio {
                let idx = order[i];
                let d = self.space_demand(AsId(idx as u32));
                if d > 0 {
                    group.push((idx, d));
                }
                i += 1;
            }
            // Waterfall even split within the priority level.
            while !group.is_empty() && avail > 0 {
                let share = avail / group.len() as u32;
                if share == 0 {
                    // Fewer processors than claimants: one each to a
                    // rotating window of claimants (time-slicing the
                    // remainder, deterministically).
                    group.sort_by_key(|&(idx, _)| idx);
                    has_remainder = true;
                    let len = group.len();
                    let start = (self.share_rotation as usize) % len;
                    for k in 0..(avail as usize) {
                        let (idx, _) = group[(start + k) % len];
                        targets[idx] += 1;
                    }
                    avail = 0;
                    break;
                }
                let satisfied: Vec<(usize, u32)> =
                    group.iter().copied().filter(|&(_, d)| d <= share).collect();
                if satisfied.is_empty() {
                    // Everyone wants at least the share: split evenly and
                    // hand the remainder out one-by-one, rotating who gets
                    // the extras.
                    group.sort_by_key(|&(idx, _)| idx);
                    let rem = (avail - share * group.len() as u32) as usize;
                    if rem > 0 {
                        has_remainder = true;
                    }
                    let len = group.len();
                    let start = (self.share_rotation as usize) % len;
                    for (k, &(idx, _)) in group.iter().enumerate() {
                        let gets_extra = (k + len - start) % len < rem;
                        targets[idx] += share + u32::from(gets_extra);
                    }
                    avail = 0;
                    break;
                }
                for &(idx, d) in &satisfied {
                    targets[idx] += d;
                    avail -= d;
                }
                group.retain(|&(idx, _)| !satisfied.iter().any(|&(s, _)| s == idx));
            }
        }
        (targets, has_remainder)
    }

    /// Recomputes the allocation and moves processors to match.
    pub(crate) fn rebalance(&mut self) {
        if self.cfg.sched != SchedMode::SaAllocator {
            return;
        }
        self.metrics.rebalances.inc();
        let (targets, has_remainder) = self.compute_targets_inner();
        if has_remainder && !self.rotation_armed {
            // Time-slice the remainder: rotate which spaces hold the extra
            // processors once per quantum.
            self.rotation_armed = true;
            let at = self.q.now() + self.cost.quantum;
            self.q.schedule(at, Event::RotateShares);
        }
        // Phase 1: take processors from over-allocated spaces.
        #[expect(clippy::needless_range_loop, reason = "indexes two tables")]
        for idx in 0..self.spaces.len() {
            let id = AsId(idx as u32);
            while self.spaces[idx].assigned_cpus > targets[idx] {
                let Some(cpu) = self.pick_release_victim(id) else {
                    break; // everything eligible is mid-kernel-path
                };
                if !self.take_cpu_from(cpu) {
                    break;
                }
                self.metrics.reallocations.inc();
            }
        }
        // Phase 2: grant free processors to under-allocated spaces.
        #[expect(clippy::needless_range_loop, reason = "indexes two tables")]
        for idx in 0..self.spaces.len() {
            let id = AsId(idx as u32);
            while self.spaces[idx].assigned_cpus < targets[idx] {
                let Some(cpu) = self.find_unassigned_idle_cpu() else {
                    return;
                };
                let before = self.spaces[idx].assigned_cpus;
                self.grant_cpu_to(cpu, id);
                self.metrics.reallocations.inc();
                if self.spaces[idx].assigned_cpus <= before {
                    // The grant did not stick (upcall deferred on a page
                    // fault, or demand evaporated); avoid re-granting in a
                    // zero-time loop.
                    break;
                }
            }
        }
    }

    /// Chooses which of a space's processors to give up, preferring ones
    /// whose activation reported itself idle.
    fn pick_release_victim(&self, space: AsId) -> Option<usize> {
        let mut fallback = None;
        for cpu in 0..self.cpus.len() {
            if self.cpus[cpu].assigned != Some(space) || self.cpus[cpu].realloc_pending {
                continue;
            }
            match self.cpus[cpu].running {
                Running::Idle => return Some(cpu),
                Running::Act(a)
                    if self.acts[a.index()].idle_hint && self.act_victim_eligible(cpu) =>
                {
                    return Some(cpu);
                }
                _ => {}
            }
            fallback.get_or_insert(cpu);
        }
        fallback
    }

    /// Takes `cpu` from its current owner. Returns false if the move had to
    /// be deferred to the next segment boundary.
    pub(crate) fn take_cpu_from(&mut self, cpu: usize) -> bool {
        let Some(owner) = self.cpus[cpu].assigned else {
            return true; // already free
        };
        match self.cpus[cpu].running {
            Running::Idle => {
                if self.cpus[cpu].inflight.is_some() {
                    self.cpus[cpu].realloc_pending = true;
                    return false;
                }
                self.release_cpu(cpu);
                true
            }
            Running::Kt(kt) => {
                let can_now = self.cpus[cpu]
                    .inflight
                    .as_ref()
                    .is_none_or(|inf| inf.seg.preemptible);
                if !can_now {
                    self.cpus[cpu].realloc_pending = true;
                    return false;
                }
                self.preempt_kt_to_queue(cpu, kt);
                self.release_cpu(cpu);
                true
            }
            Running::Act(_) => {
                if !self.act_victim_eligible(cpu) {
                    self.cpus[cpu].realloc_pending = true;
                    return false;
                }
                let ev = self.stop_activation_on(cpu);
                self.release_cpu(cpu);
                // §3.1: the old address space must still be notified — on
                // another of its processors, or pended if it has none.
                self.notify_preemption(owner, ev);
                true
            }
        }
    }

    /// Routes a Preempted event to its space (possibly by preempting a
    /// second processor of that space, per §3.1).
    pub(crate) fn notify_preemption(&mut self, space: AsId, ev: UpcallEvent) {
        if self.spaces[space.index()].done {
            return;
        }
        // When the last processor is preempted, the notification is
        // delayed until the space is next given a processor.
        let now = self.q.now();
        self.spaces[space.index()].sa.pending_events.push(ev);
        self.spaces[space.index()].sa.pending_since.push(now);
        if self.spaces[space.index()].assigned_cpus > 0 {
            self.try_deliver_pending(space);
        }
    }

    /// Releases `cpu` from its owner, leaving it unassigned and idle.
    pub(crate) fn release_cpu(&mut self, cpu: usize) {
        if let Some(owner) = self.cpus[cpu].assigned.take() {
            self.spaces[owner.index()].assigned_cpus -= 1;
        }
        debug_assert!(self.cpus[cpu].inflight.is_none());
        self.set_idle(cpu);
    }

    /// Assigns a free CPU to `space` and starts it working.
    pub(crate) fn grant_cpu_to(&mut self, cpu: usize, space: AsId) {
        debug_assert!(self.cpus[cpu].assigned.is_none());
        debug_assert!(self.cpus[cpu].inflight.is_none());
        self.cpus[cpu].assigned = Some(space);
        self.spaces[space.index()].assigned_cpus += 1;
        self.trace.event(self.q.now(), || TraceEvent::Grant {
            cpu: cpu as u32,
            space: space.0,
        });
        match &self.spaces[space.index()].kind {
            SpaceKind::UserOnSa => {
                self.deliver_upcall_on_cpu(cpu, space, vec![UpcallEvent::AddProcessor]);
            }
            SpaceKind::KernelDirect { .. } | SpaceKind::UserOnKt { .. } => {
                if let Some(kt) = self.spaces[space.index()].ready.pop() {
                    self.note_ready_wait(kt, -1);
                    self.dispatch_kt(cpu, kt);
                    self.schedule_dispatch(cpu);
                } else {
                    // Demand evaporated between decision and grant.
                    self.release_cpu(cpu);
                }
            }
        }
    }
}
