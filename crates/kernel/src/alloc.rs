//! The processor allocator (§4.1).
//!
//! Space-shares processors among address spaces while respecting priorities
//! and guaranteeing that no processor idles if some space has work:
//! "Processors are divided evenly among address spaces; if some address
//! spaces do not need all of the processors in their share, those
//! processors are divided evenly among the remainder."
//!
//! Kernel-direct (Topaz) spaces compete on the same footing as
//! scheduler-activation spaces: "there is no need for static partitioning
//! of processors." Their demand is read from internal kernel structures;
//! SA spaces' demand comes from their Table 3 hints.

use crate::config::SchedMode;
use crate::exec::Running;
use crate::ids::AsId;
use crate::kernel::{Event, Kernel};
use crate::policy::{AllocView, SpaceDemand};
use crate::provenance::VictimReason;
use crate::space::SpaceKind;
use crate::upcall::UpcallEvent;
use sa_sim::TraceEvent;

/// Owned backing store for an [`AllocView`] (the policy borrows it).
pub(crate) struct AllocSnapshot {
    spaces: Vec<SpaceDemand>,
    last_space: Vec<Option<u32>>,
    total_cpus: u32,
    rotation: u32,
}

impl AllocSnapshot {
    pub(crate) fn view(&self) -> AllocView<'_> {
        AllocView {
            spaces: &self.spaces,
            total_cpus: self.total_cpus,
            rotation: self.rotation,
            last_space: &self.last_space,
        }
    }
}

impl Kernel {
    /// A space's current processor demand.
    pub(crate) fn space_demand(&self, id: AsId) -> u32 {
        let s = &self.spaces[id.index()];
        if !s.started || s.done {
            return 0;
        }
        match &s.kind {
            SpaceKind::KernelDirect { .. } | SpaceKind::UserOnKt { .. } => {
                // Internal kernel data: runnable + running threads.
                let running = self
                    .cpus
                    .iter()
                    .filter(|c| {
                        c.assigned == Some(id)
                            && matches!(c.running, Running::Kt(kt)
                                if self.kts.hot[kt.index()].space == id)
                    })
                    .count() as u32;
                s.ready.len() as u32 + running
            }
            SpaceKind::UserOnSa => {
                if !s.runtime_pages_resident {
                    // Cannot enter the space until its manager pages it in.
                    0
                } else {
                    // The Table-3 hints; a pending notification always
                    // justifies at least one processor.
                    let base = s.sa.desired;
                    if s.sa.pending_events.is_empty() {
                        base
                    } else {
                        base.max(1)
                    }
                }
            }
        }
    }

    /// Snapshots the allocator-relevant state for the policy to read.
    pub(crate) fn alloc_snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            spaces: (0..self.spaces.len())
                .map(|idx| SpaceDemand {
                    demand: self.space_demand(AsId(idx as u32)),
                    priority: self.spaces[idx].priority,
                    assigned: self.spaces[idx].assigned_cpus,
                })
                .collect(),
            last_space: self
                .cpus
                .iter()
                .map(|c| c.last_space.map(|s| s.0))
                .collect(),
            total_cpus: self.cpus.len() as u32,
            rotation: self.share_rotation,
        }
    }

    /// Asks the configured [`crate::policy::AllocPolicy`] for the target
    /// allocation.
    pub(crate) fn compute_targets(&self) -> Vec<u32> {
        self.compute_targets_inner().0
    }

    /// As [`Kernel::compute_targets`], also reporting whether a remainder
    /// exists (so the rotation timer knows to keep running).
    pub(crate) fn compute_targets_inner(&self) -> (Vec<u32>, bool) {
        let snap = self.alloc_snapshot();
        self.alloc_policy.targets(&snap.view())
    }

    /// Which free CPU should `space` receive? The mechanism collects the
    /// grantable CPUs; the policy picks among them (§4.2 affinity hook;
    /// the default policy takes the lowest-numbered, matching the old
    /// inlined scan).
    pub(crate) fn pick_grant_cpu(&self, space: AsId) -> Option<usize> {
        let free: Vec<usize> = (0..self.cpus.len())
            .filter(|&c| {
                self.cpus[c].assigned.is_none()
                    && matches!(self.cpus[c].running, Running::Idle)
                    && self.cpus[c].inflight.is_none()
                    && !self.cpus[c].realloc_pending
            })
            .collect();
        if free.is_empty() {
            return None;
        }
        let snap = self.alloc_snapshot();
        let cpu = self
            .alloc_policy
            .pick_cpu(&snap.view(), space.index(), &free);
        debug_assert!(free.contains(&cpu), "policy picked a non-free CPU");
        Some(cpu)
    }

    /// Recomputes the allocation and moves processors to match.
    pub(crate) fn rebalance(&mut self) {
        if self.cfg.sched != SchedMode::SaAllocator {
            return;
        }
        self.metrics.rebalances.inc();
        let (targets, has_remainder) = self.compute_targets_inner();
        // Choke point 1: the targets() recomputation is a decision.
        self.note_targets_decision(&targets);
        if has_remainder && !self.rotation_armed {
            // Time-slice the remainder: rotate which spaces hold the extra
            // processors once per quantum.
            self.rotation_armed = true;
            let at = self.q.now() + self.cost.quantum;
            self.sched_ev(at, Event::RotateShares);
        }
        // Phase 1: take processors from over-allocated spaces.
        #[expect(clippy::needless_range_loop, reason = "indexes two tables")]
        for idx in 0..self.spaces.len() {
            let id = AsId(idx as u32);
            while self.spaces[idx].assigned_cpus > targets[idx] {
                let Some(cpu) = self.pick_release_victim(id) else {
                    break; // everything eligible is mid-kernel-path
                };
                if !self.take_cpu_from(cpu) {
                    break;
                }
                self.metrics.reallocations.inc();
            }
        }
        // Phase 2: grant free processors to under-allocated spaces.
        'grant: {
            #[expect(clippy::needless_range_loop, reason = "indexes two tables")]
            for idx in 0..self.spaces.len() {
                let id = AsId(idx as u32);
                while self.spaces[idx].assigned_cpus < targets[idx] {
                    let Some(cpu) = self.pick_grant_cpu(id) else {
                        break 'grant;
                    };
                    let before = self.spaces[idx].assigned_cpus;
                    self.grant_cpu_to(cpu, id);
                    self.metrics.reallocations.inc();
                    if self.spaces[idx].assigned_cpus <= before {
                        // The grant did not stick (upcall deferred on a page
                        // fault, or demand evaporated); avoid re-granting in
                        // a zero-time loop.
                        break;
                    }
                }
            }
        }
        self.arm_dwell_retry(&targets);
    }

    /// Is `cpu` inside its minimum-dwell window (hysteresis veto)? Always
    /// false under policies without a dwell, so the default allocator's
    /// victim choices are untouched.
    pub(crate) fn dwell_holds(&self, cpu: usize) -> bool {
        let Some(dwell) = self.alloc_policy.min_dwell() else {
            return false;
        };
        self.cpus[cpu]
            .assigned_since
            .is_some_and(|at| self.q.now() < at + dwell)
    }

    /// Hysteresis liveness: a rebalance pass that left one space over
    /// target while another sat under target was dwell-veto-limited (the
    /// only way Phase 1 declines work the targets demand). Re-run the
    /// allocator when the earliest outstanding dwell expires, so the
    /// deferred move happens without waiting for an unrelated event.
    fn arm_dwell_retry(&mut self, targets: &[u32]) {
        let Some(dwell) = self.alloc_policy.min_dwell() else {
            return;
        };
        if self.dwell_retry_armed {
            return;
        }
        let over = (0..self.spaces.len()).any(|i| self.spaces[i].assigned_cpus > targets[i]);
        let under = (0..self.spaces.len()).any(|i| self.spaces[i].assigned_cpus < targets[i]);
        if !over || !under {
            return;
        }
        let now = self.q.now();
        let Some(at) = self
            .cpus
            .iter()
            .filter_map(|c| c.assigned_since)
            .map(|since| since + dwell)
            .filter(|&t| t > now)
            .min()
        else {
            return;
        };
        self.dwell_retry_armed = true;
        self.sched_ev(at, Event::DwellRetry);
    }

    /// Chooses which of a space's processors to give up, preferring ones
    /// whose activation reported itself idle.
    fn pick_release_victim(&self, space: AsId) -> Option<usize> {
        let mut fallback = None;
        for cpu in 0..self.cpus.len() {
            if self.cpus[cpu].assigned != Some(space)
                || self.cpus[cpu].realloc_pending
                || self.dwell_holds(cpu)
            {
                continue;
            }
            match self.cpus[cpu].running {
                Running::Idle => return Some(cpu),
                Running::Act(a)
                    if self.acts[a.index()].idle_hint && self.act_victim_eligible(cpu) =>
                {
                    return Some(cpu);
                }
                _ => {}
            }
            fallback.get_or_insert(cpu);
        }
        fallback
    }

    /// Takes `cpu` from its current owner. Returns false if the move had to
    /// be deferred to the next segment boundary.
    pub(crate) fn take_cpu_from(&mut self, cpu: usize) -> bool {
        let Some(owner) = self.cpus[cpu].assigned else {
            return true; // already free
        };
        match self.cpus[cpu].running {
            Running::Idle => {
                if self.cpus[cpu].inflight.is_some() {
                    self.cpus[cpu].realloc_pending = true;
                    return false;
                }
                let d = self.note_victim_decision(cpu, owner, VictimReason::Realloc);
                self.release_cpu_by(cpu, d);
                true
            }
            Running::Kt(kt) => {
                let can_now = self.cpus[cpu]
                    .inflight
                    .as_ref()
                    .is_none_or(|inf| inf.seg.preemptible);
                if !can_now {
                    self.cpus[cpu].realloc_pending = true;
                    return false;
                }
                self.preempt_kt_to_queue(cpu, kt);
                let d = self.note_victim_decision(cpu, owner, VictimReason::Realloc);
                self.release_cpu_by(cpu, d);
                true
            }
            Running::Act(_) => {
                if !self.act_victim_eligible(cpu) {
                    self.cpus[cpu].realloc_pending = true;
                    return false;
                }
                let ev = self.stop_activation_on(cpu, VictimReason::Realloc);
                self.release_cpu_by(cpu, ev.decision().unwrap_or(0));
                // §3.1: the old address space must still be notified — on
                // another of its processors, or pended if it has none.
                self.notify_preemption(owner, ev);
                true
            }
        }
    }

    /// Routes a Preempted event to its space (possibly by preempting a
    /// second processor of that space, per §3.1).
    pub(crate) fn notify_preemption(&mut self, space: AsId, ev: UpcallEvent) {
        if self.spaces[space.index()].done {
            return;
        }
        // When the last processor is preempted, the notification is
        // delayed until the space is next given a processor.
        let now = self.q.now();
        self.spaces[space.index()].sa.pending_events.push(ev);
        self.spaces[space.index()].sa.pending_since.push(now);
        if self.spaces[space.index()].assigned_cpus > 0 {
            self.try_deliver_pending(space);
        }
    }

    /// Choke point 3 for non-activation victims: records the decision
    /// behind taking `cpu` from `owner` (activation victims get theirs
    /// in [`Kernel::stop_activation_on`], where the `Preempted` upcall
    /// is stamped). Returns the decision id.
    pub(crate) fn note_victim_decision(
        &mut self,
        cpu: usize,
        owner: AsId,
        reason: VictimReason,
    ) -> u64 {
        let id = self.next_decision();
        if self.provenance_enabled() {
            self.record_decision(
                id,
                crate::provenance::AllocDecisionKind::Victim {
                    cpu: cpu as u32,
                    space: owner.0,
                    reason,
                },
            );
        }
        id
    }

    /// Releases `cpu` from its owner, leaving it unassigned and idle.
    /// Remembers the owner as the CPU's last space (§4.2 affinity input).
    /// Voluntary releases (runtime gave the processor up, space
    /// finished) come through here; allocator-driven releases use
    /// [`Kernel::release_cpu_by`] with the victim decision.
    pub(crate) fn release_cpu(&mut self, cpu: usize) {
        self.release_cpu_by(cpu, 0);
    }

    /// As [`Kernel::release_cpu`], ending the dwell episode with the
    /// allocator decision that caused the release (0 = none).
    pub(crate) fn release_cpu_by(&mut self, cpu: usize, decision: u64) {
        if let Some(owner) = self.cpus[cpu].assigned.take() {
            self.spaces[owner.index()].assigned_cpus -= 1;
            self.cpus[cpu].last_space = Some(owner);
            self.cpus[cpu].assigned_since = None;
            if let Some(d) = &mut self.dwell {
                d.release(cpu, self.q.now(), decision);
            }
        }
        // Whatever grant chain was open on this CPU will never complete.
        self.cpus[cpu].open_grant = None;
        debug_assert!(self.cpus[cpu].inflight.is_none());
        self.set_idle(cpu);
    }

    /// Assigns a free CPU to `space` and starts it working
    /// (choke point 2: the `pick_cpu()` grant decision).
    pub(crate) fn grant_cpu_to(&mut self, cpu: usize, space: AsId) {
        debug_assert!(self.cpus[cpu].assigned.is_none());
        debug_assert!(self.cpus[cpu].inflight.is_none());
        let decision = self.next_decision();
        if self.provenance_enabled() {
            self.record_decision(
                decision,
                crate::provenance::AllocDecisionKind::Grant {
                    cpu: cpu as u32,
                    space: space.0,
                },
            );
        }
        self.mailbox.post(
            &self.plan,
            crate::mailbox::CrossShardMsg::Grant {
                cpu: cpu as u32,
                space: space.0,
            },
        );
        self.cpus[cpu].assigned = Some(space);
        self.cpus[cpu].assigned_since = Some(self.q.now());
        self.spaces[space.index()].assigned_cpus += 1;
        if let Some(d) = &mut self.dwell {
            d.assign(cpu, space.0, self.q.now(), decision);
        }
        self.trace.event(self.q.now(), || TraceEvent::Grant {
            cpu: cpu as u32,
            space: space.0,
            decision,
        });
        match &self.spaces[space.index()].kind {
            SpaceKind::UserOnSa => {
                self.cpus[cpu].open_grant = self.open_grant_chain(decision, cpu, space);
                self.deliver_upcall_on_cpu(
                    cpu,
                    space,
                    vec![UpcallEvent::AddProcessor { decision }],
                );
            }
            SpaceKind::KernelDirect { .. } | SpaceKind::UserOnKt { .. } => {
                if let Some(kt) = self.spaces[space.index()].ready.pop() {
                    self.note_ready_wait(kt, -1);
                    self.dispatch_kt(cpu, kt);
                    self.schedule_dispatch(cpu);
                } else {
                    // Demand evaporated between decision and grant.
                    self.release_cpu(cpu);
                }
            }
        }
    }
}
