//! Driving virtual processors: polling the user-level runtime and
//! translating its actions into machine execution.
//!
//! The same [`crate::upcall::UserRuntime`] contract serves both substrates:
//! kernel-thread VPs (original FastThreads — the kernel resumes them
//! invisibly and delivers no upcalls) and scheduler activations (the
//! paper's system).

use crate::exec::{Effect, Micro, ResumeWith, Running, Seg, UnitRef};
use crate::ids::{AsId, VpId};
use crate::kernel::Kernel;
use crate::kthread::{BlockKind, KtState};
use crate::space::SpaceKind;
use crate::upcall::{PollReason, RtEnv, Syscall, VpAction, WorkKind};
use sa_sim::SimDuration;

impl Kernel {
    /// Refills a VP unit by polling its runtime. Returns a segment the
    /// caller should start immediately: the common poll result is "run
    /// this segment", and handing it straight back to the dispatch loop
    /// skips a pipeline push/pop round trip on the per-event hot path.
    pub(crate) fn refill_vp(&mut self, cpu: usize, unit: UnitRef, vp: VpId) -> Option<Seg> {
        let (space, reason) = match unit {
            UnitRef::Kt(kt) => (
                self.kts.hot[kt.index()].space,
                resume_to_reason(self.kts.cold[kt.index()].resume.take()),
            ),
            UnitRef::Act(a) => (
                self.acts[a.index()].space,
                resume_to_reason(self.acts[a.index()].resume.take()),
            ),
        };
        if self.spaces[space.index()].done {
            // Stale dispatch after teardown; park quietly.
            self.park_unit(cpu, unit);
            return None;
        }
        let action = self.call_poll(space, vp, reason);
        self.apply_vp_action(cpu, unit, space, action)
    }

    /// Calls `runtime.poll` with a scoped environment, then applies any
    /// requested kicks.
    pub(crate) fn call_poll(&mut self, space: AsId, vp: VpId, reason: PollReason) -> VpAction {
        let mut rt = self.spaces[space.index()]
            .runtime
            .take()
            .expect("poll while runtime is checked out");
        let mut env = RtEnv::new(self.q.now(), &self.cost, space.0, &mut self.trace);
        let action = rt.poll(&mut env, vp, reason);
        let kicks = std::mem::take(&mut env.kicks);
        self.spaces[space.index()].runtime = Some(rt);
        // A `Run` result proves the runtime still has live work (a loaded
        // thread or boot step), so this poll cannot have made the space
        // quiescent; skip the space-table walk for the common case. Every
        // other action (spin, syscall, give-up) can coincide with the last
        // thread exiting and must trigger the check.
        if !matches!(action, VpAction::Run(_)) {
            self.quiesce_dirty = true;
        }
        for k in kicks {
            if k != vp {
                self.process_kick(space, k);
            }
        }
        action
    }

    /// Ends a spin on the kicked VP, if it is indeed spinning right now.
    pub(crate) fn process_kick(&mut self, space: AsId, vp: VpId) {
        let Some(unit) = self.vp_unit(space, vp) else {
            return;
        };
        let cpu = match unit {
            UnitRef::Kt(kt) => match self.kts.hot[kt.index()].state {
                KtState::Running(c) => c as usize,
                _ => return, // preempted spinner re-checks when resumed
            },
            UnitRef::Act(a) => match self.acts[a.index()].state {
                crate::activation::ActState::Running(c) => c as usize,
                _ => return,
            },
        };
        let spinning = self.cpus[cpu]
            .inflight
            .as_ref()
            .is_some_and(|inf| matches!(inf.seg.kind, WorkKind::SpinWait | WorkKind::IdleSpin));
        if !spinning {
            return;
        }
        // Charge the elapsed spin and wake the VP with `Kicked`.
        let _ = self.take_inflight_remainder(cpu);
        match unit {
            UnitRef::Kt(kt) => self.kts.cold[kt.index()].resume = Some(ResumeWith::Kicked),
            UnitRef::Act(a) => self.acts[a.index()].resume = Some(ResumeWith::Kicked),
        }
        self.schedule_dispatch(cpu);
    }

    /// Resolves a VP id to its execution unit.
    pub(crate) fn vp_unit(&self, space: AsId, vp: VpId) -> Option<UnitRef> {
        match &self.spaces[space.index()].kind {
            SpaceKind::UserOnKt { vps } => vps.get(vp.index()).copied().map(UnitRef::Kt),
            SpaceKind::UserOnSa => {
                let a = crate::ids::ActId(vp.0);
                if (a.index()) < self.acts.len() {
                    Some(UnitRef::Act(a))
                } else {
                    None
                }
            }
            SpaceKind::KernelDirect { .. } => None,
        }
    }

    /// Applies a runtime-returned action to the unit on `cpu`. `Run` and
    /// `Spin` hand their segment back for the caller to start directly
    /// (the unit's pipeline is empty — refill only runs when it drained —
    /// so starting in place is order-identical to a push/pop round trip).
    pub(crate) fn apply_vp_action(
        &mut self,
        cpu: usize,
        unit: UnitRef,
        space: AsId,
        action: VpAction,
    ) -> Option<Seg> {
        match action {
            VpAction::Run(seg) => Some(Seg {
                dur: seg.dur,
                preemptible: true,
                kind: seg.kind,
                cookie: seg.cookie,
            }),
            VpAction::Spin { cookie, kind } => {
                debug_assert!(
                    matches!(kind, WorkKind::SpinWait | WorkKind::IdleSpin),
                    "spin with non-spin kind {kind:?}"
                );
                Some(Seg {
                    dur: SimDuration::MAX,
                    preemptible: true,
                    kind,
                    cookie,
                })
            }
            VpAction::Syscall { call } => {
                self.push_syscall_micros(unit, space, call);
                None
            }
            VpAction::GiveUp => {
                match unit {
                    UnitRef::Kt(_) => self.park_unit(cpu, unit),
                    UnitRef::Act(a) => self.act_give_up(cpu, a),
                }
                None
            }
        }
    }

    /// Parks a kernel-thread VP that gave up its processor.
    fn park_unit(&mut self, cpu: usize, unit: UnitRef) {
        match unit {
            UnitRef::Kt(kt) => self.block_kt(cpu, kt, BlockKind::Parked),
            UnitRef::Act(a) => {
                // Teardown path only.
                self.acts[a.index()].state = crate::activation::ActState::Cached;
                self.set_idle(cpu);
                self.bump_gen(cpu);
            }
        }
    }

    /// Queues the kernel-entry micro-ops for a VP syscall.
    pub(crate) fn push_syscall_micros(&mut self, unit: UnitRef, space: AsId, call: Syscall) {
        match unit {
            UnitRef::Kt(kt) => self.push_kt_vp_syscall(kt, space, call),
            UnitRef::Act(a) => {
                // MemRead resolves in hardware on a hit: no trap charged
                // unless the fault path runs (decided by the effect).
                if !matches!(call, Syscall::MemRead { .. }) {
                    self.spaces[space.index()].metrics.traps.inc();
                    let trap = self.segs.trap;
                    self.acts[a.index()].pipeline.push_back(Micro::Seg(trap));
                }
                self.acts[a.index()]
                    .pipeline
                    .push_back(Micro::Eff(Effect::SaCall(call)));
            }
        }
    }

    /// Syscall entry for a kernel-thread VP (original FastThreads).
    fn push_kt_vp_syscall(&mut self, kt: crate::ids::KtId, space: AsId, call: Syscall) {
        let c = &self.cost;
        let dc = self.direct_costs(space);
        let trap = Seg::kernel(c.kernel_trap);
        let copy = Seg::kernel(c.syscall_copy_check);
        let ret = self.segs.ret;
        let sigok = ResumeWith::Syscall(crate::upcall::SyscallOutcome::Ok);
        let mut trapped = true;
        let p = &mut self.kts.cold[kt.index()].pipeline;
        match call {
            Syscall::Io { dur } => {
                p.push_back(Micro::Seg(trap));
                p.push_back(Micro::Seg(copy));
                p.push_back(Micro::Eff(Effect::StartIo(dur)));
            }
            Syscall::MemRead { page } => {
                p.push_back(Micro::Eff(Effect::MemCheck(page)));
                trapped = false;
            }
            Syscall::KernelSignal { chan } => {
                p.push_back(Micro::Seg(trap));
                p.push_back(Micro::Seg(Seg::kernel(dc.signal)));
                p.push_back(Micro::Eff(Effect::ChanSignal(chan)));
                p.push_back(Micro::Seg(ret));
                p.push_back(Micro::Eff(Effect::Resume(sigok)));
            }
            Syscall::KernelWait { chan } => {
                p.push_back(Micro::Seg(trap));
                p.push_back(Micro::Seg(Seg::kernel(dc.wait)));
                p.push_back(Micro::Eff(Effect::ChanWait(chan)));
            }
            // Allocation hints from a kernel-thread substrate are
            // meaningless (the native kernel has no allocator); charge the
            // trap and ignore — this models why the traditional interface
            // cannot use the information (§2.2).
            Syscall::SetDesiredProcessors { .. }
            | Syscall::ProcessorIdle
            | Syscall::RecycleActivations { .. }
            | Syscall::PreemptVp { .. } => {
                p.push_back(Micro::Seg(trap));
                p.push_back(Micro::Seg(ret));
                p.push_back(Micro::Eff(Effect::Resume(sigok)));
            }
        }
        if trapped {
            self.spaces[space.index()].metrics.traps.inc();
        }
    }

    /// Flavor-aware resume for `MemCheck` hits.
    pub(crate) fn mem_hit_resume(&self, kt: crate::ids::KtId) -> ResumeWith {
        match self.kts.hot[kt.index()].flavor {
            crate::exec::KtFlavor::Vp(_) => {
                ResumeWith::Syscall(crate::upcall::SyscallOutcome::MemHit)
            }
            _ => ResumeWith::Op(sa_machine::OpResult::Done),
        }
    }

    /// Refills an activation by polling the runtime. Returns a segment to
    /// start immediately (see [`Kernel::refill_vp`]).
    pub(crate) fn refill_act(&mut self, cpu: usize, a: crate::ids::ActId) -> Option<Seg> {
        debug_assert!(matches!(self.cpus[cpu].running, Running::Act(x) if x == a));
        self.refill_vp(cpu, UnitRef::Act(a), VpId(a.0))
    }
}

/// Maps a stored resume value to a poll reason.
fn resume_to_reason(r: Option<ResumeWith>) -> PollReason {
    match r {
        None => PollReason::SegDone,
        Some(ResumeWith::Fresh) => PollReason::Fresh,
        Some(ResumeWith::Kicked) => PollReason::Kicked,
        Some(ResumeWith::Syscall(o)) => PollReason::SyscallDone(o),
        Some(ResumeWith::Op(_)) => unreachable!("op resume delivered to a VP"),
    }
}
