//! Protocol tests for scheduler activations: the Table 2 upcall points,
//! the Table 3 downcalls, activation recycling, delayed notifications,
//! the upcall-page-fault rule, and the debugger's logical processors —
//! exercised through a scripted probe runtime that records everything the
//! kernel tells it.

use sa_kernel::upcall::{
    PollReason, RtEnv, Syscall, UpcallEvent, UserRuntime, VpAction, VpSeg, WorkKind,
};
use sa_kernel::{ActId, AsId, Kernel, KernelConfig, SchedMode, SpaceSpec, VpId};
use sa_machine::program::ThreadBody;
use sa_machine::{ComputeBody, CostModel};
use sa_sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// What the probe runtime does at each poll, in order. When the script is
/// empty the runtime gives the processor back and reports quiescent.
#[derive(Debug, Clone)]
enum Act {
    Run(u64),
    Call(Syscall),
}

/// A record of everything the kernel told the runtime.
#[derive(Debug, Clone, Default)]
struct ProbeLog {
    /// One entry per upcall: the batch of events.
    upcalls: Vec<Vec<UpcallEvent>>,
    /// One entry per poll: (vp, reason).
    polls: Vec<(VpId, String)>,
}

#[derive(Clone)]
struct LogHandle(Rc<RefCell<ProbeLog>>);

impl LogHandle {
    fn new() -> Self {
        LogHandle(Rc::new(RefCell::new(ProbeLog::default())))
    }

    fn upcalls(&self) -> Vec<Vec<UpcallEvent>> {
        self.0.borrow().upcalls.clone()
    }

    fn all_events(&self) -> Vec<UpcallEvent> {
        self.0.borrow().upcalls.iter().flatten().copied().collect()
    }

    fn polls(&self) -> usize {
        self.0.borrow().polls.len()
    }
}

/// A scripted runtime: replays `script` one action per poll; `GiveUp` once
/// exhausted. Blocked work is tracked so `quiescent` stays honest.
struct ProbeRuntime {
    log: LogHandle,
    script: VecDeque<Act>,
    outstanding_blocks: Rc<RefCell<i32>>,
    done_when_empty: bool,
    /// Set once a poll found the script exhausted with nothing blocked:
    /// only then is the probe quiescent (otherwise the kernel would retire
    /// the space while its last action is still in flight).
    finished: bool,
}

impl ProbeRuntime {
    fn new(log: LogHandle, script: Vec<Act>) -> Self {
        ProbeRuntime {
            log,
            script: script.into(),
            outstanding_blocks: Rc::new(RefCell::new(0)),
            done_when_empty: true,
            finished: false,
        }
    }
}

impl UserRuntime for ProbeRuntime {
    fn kthread_vps(&self) -> Option<u32> {
        None
    }

    fn set_main(&mut self, _body: Box<dyn ThreadBody>) {}

    fn deliver_upcall(&mut self, _env: &mut RtEnv<'_>, _vp: VpId, events: &[UpcallEvent]) {
        for ev in events {
            match ev {
                UpcallEvent::Blocked { .. } => *self.outstanding_blocks.borrow_mut() += 1,
                UpcallEvent::Unblocked { .. } => *self.outstanding_blocks.borrow_mut() -= 1,
                _ => {}
            }
        }
        self.log.0.borrow_mut().upcalls.push(events.to_vec());
    }

    fn poll(&mut self, _env: &mut RtEnv<'_>, vp: VpId, reason: PollReason) -> VpAction {
        self.log
            .0
            .borrow_mut()
            .polls
            .push((vp, format!("{reason:?}")));
        match self.script.pop_front() {
            Some(Act::Run(us)) => VpAction::Run(VpSeg {
                dur: SimDuration::from_micros(us),
                cookie: 7,
                kind: WorkKind::UserWork,
            }),
            Some(Act::Call(call)) => VpAction::Syscall { call },
            None => {
                if *self.outstanding_blocks.borrow() > 0 {
                    // Keep the processor; the unblock notification needs
                    // the space alive.
                    VpAction::Spin {
                        cookie: 0,
                        kind: WorkKind::IdleSpin,
                    }
                } else {
                    self.finished = true;
                    VpAction::GiveUp
                }
            }
        }
    }

    fn quiescent(&self) -> bool {
        self.done_when_empty
            && self.finished
            && self.script.is_empty()
            && *self.outstanding_blocks.borrow() == 0
    }

    fn desired_processors(&self) -> u32 {
        1
    }
}

fn kernel(cpus: u16) -> Kernel {
    Kernel::new(
        KernelConfig {
            cpus,
            sched: SchedMode::SaAllocator,
            daemons: Vec::new(),
            seed: 3,
            run_limit: SimTime::from_millis(60_000),
            ..KernelConfig::default()
        },
        CostModel::firefly_prototype(),
    )
}

fn probe_space(k: &mut Kernel, log: &LogHandle, script: Vec<Act>) -> AsId {
    k.add_space(SpaceSpec::user_level(
        "probe",
        Box::new(ProbeRuntime::new(log.clone(), script)),
        Box::new(ComputeBody::null()),
    ))
}

#[test]
fn program_start_delivers_add_processor_upcall() {
    // §3.1: "When a program is started, the kernel creates a scheduler
    // activation, assigns it to a processor, and upcalls into the
    // application address space at a fixed entry point."
    let mut k = kernel(2);
    let log = LogHandle::new();
    probe_space(&mut k, &log, vec![Act::Run(100)]);
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked);
    let upcalls = log.upcalls();
    assert!(
        matches!(upcalls[0][..], [UpcallEvent::AddProcessor { .. }]),
        "{:?}",
        upcalls[0]
    );
    assert!(log.polls() >= 2); // Fresh + SegDone at least
}

#[test]
fn blocking_call_triggers_blocked_then_unblocked() {
    let mut k = kernel(1);
    let log = LogHandle::new();
    probe_space(
        &mut k,
        &log,
        vec![
            Act::Run(50),
            Act::Call(Syscall::Io {
                dur: SimDuration::from_millis(5),
            }),
        ],
    );
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked, "{out:?}");
    let events = log.all_events();
    let blocked: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, UpcallEvent::Blocked { .. }))
        .collect();
    let unblocked: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, UpcallEvent::Unblocked { .. }))
        .collect();
    assert_eq!(blocked.len(), 1);
    assert_eq!(unblocked.len(), 1);
    // The Blocked and Unblocked events name the same activation and the
    // same blocking episode.
    let UpcallEvent::Blocked { vp: b, seq: bs } = blocked[0] else {
        unreachable!()
    };
    let UpcallEvent::Unblocked {
        vp: u,
        blocked_seq: us,
        ..
    } = unblocked[0]
    else {
        unreachable!()
    };
    assert_eq!(b, u);
    assert_eq!(bs, us);
}

#[test]
fn unblock_on_busy_machine_combines_with_preemption() {
    // §3.1: "the kernel may have to preempt a processor from the address
    // space to do the upcall; in this case, the upcall notifies the
    // user-level thread system, first, that the original thread can be
    // resumed, and second, that the thread that had been running on that
    // processor was preempted."
    let mut k = kernel(1);
    let log = LogHandle::new();
    probe_space(
        &mut k,
        &log,
        vec![
            Act::Call(Syscall::Io {
                dur: SimDuration::from_millis(5),
            }),
            // After the Blocked upcall, this action runs on the fresh
            // activation and is long enough to still be running when the
            // I/O completes.
            Act::Run(20_000),
            Act::Run(10),
        ],
    );
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked, "{out:?}");
    // Find the batch carrying the Unblocked event; it must also carry the
    // Preempted event for the activation that was running.
    let combined = log
        .upcalls()
        .into_iter()
        .find(|batch| {
            batch
                .iter()
                .any(|e| matches!(e, UpcallEvent::Unblocked { .. }))
        })
        .expect("no unblock batch");
    assert!(
        combined
            .iter()
            .any(|e| matches!(e, UpcallEvent::Preempted { .. })),
        "unblock did not preempt: {combined:?}"
    );
    // The preempted activation's saved state carries the runtime cookie
    // and the unfinished part of the 20 ms segment.
    let saved = combined
        .iter()
        .find_map(|e| match e {
            UpcallEvent::Preempted { saved, .. } => Some(*saved),
            _ => None,
        })
        .expect("checked");
    assert_eq!(saved.cookie, 7);
    assert!(saved.remaining > SimDuration::from_millis(10));
}

#[test]
fn multiprogramming_preempts_and_notifies_on_another_processor() {
    // §3.1's double preemption: when the kernel takes a processor from a
    // space that still has others, the notification itself preempts a
    // second processor, and one upcall reports both.
    let mut k = kernel(2);
    let log_a = LogHandle::new();
    // Space A wants both processors and computes for a long time.
    let mut rt = ProbeRuntime::new(
        log_a.clone(),
        vec![
            Act::Call(Syscall::SetDesiredProcessors { total: 2 }),
            Act::Run(50_000),
            Act::Run(50_000),
            Act::Run(50_000),
            Act::Run(50_000),
        ],
    );
    rt.done_when_empty = true;
    let _a = k.add_space(SpaceSpec::user_level(
        "a",
        Box::new(rt),
        Box::new(ComputeBody::null()),
    ));
    // Space B starts later, forcing the allocator to take a CPU from A.
    let log_b = LogHandle::new();
    let mut spec = SpaceSpec::user_level(
        "b",
        Box::new(ProbeRuntime::new(log_b.clone(), vec![Act::Run(10_000)])),
        Box::new(ComputeBody::null()),
    );
    spec.start_at = SimTime::from_millis(10);
    k.add_space(spec);
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked, "{out:?}");
    // A must have received a batch with two Preempted events: the stolen
    // processor's activation and the notification carrier's.
    let batch = log_a
        .upcalls()
        .into_iter()
        .find(|b| {
            b.iter()
                .filter(|e| matches!(e, UpcallEvent::Preempted { .. }))
                .count()
                >= 2
        })
        .expect("no double-preemption batch");
    assert!(batch.len() >= 2, "{batch:?}");
    // B computed on the stolen processor.
    assert!(!log_b.upcalls().is_empty());
}

#[test]
fn last_processor_preemption_delays_notification() {
    // §3.1: "When the last processor is preempted from an address space,
    // we ... delay the notification until the kernel eventually
    // re-allocates it a processor."
    let mut k = kernel(1);
    let log_a = LogHandle::new();
    let _a = probe_space(
        &mut k,
        &log_a,
        vec![Act::Run(30_000), Act::Run(30_000), Act::Run(30_000)],
    );
    // Space B at higher priority takes the only CPU.
    let log_b = LogHandle::new();
    let mut spec = SpaceSpec::user_level(
        "b",
        Box::new(ProbeRuntime::new(log_b.clone(), vec![Act::Run(5_000)])),
        Box::new(ComputeBody::null()),
    );
    spec.priority = 10;
    spec.start_at = SimTime::from_millis(5);
    k.add_space(spec);
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked, "{out:?}");
    // A's post-start upcall batches: the preemption notification must
    // arrive together with the re-grant (AddProcessor), not on its own —
    // A had no processor to be notified on.
    let batches = log_a.upcalls();
    let delayed = batches
        .iter()
        .find(|b| b.iter().any(|e| matches!(e, UpcallEvent::Preempted { .. })));
    let delayed = delayed.expect("preemption never reported");
    assert!(
        delayed
            .iter()
            .any(|e| matches!(e, UpcallEvent::AddProcessor { .. })),
        "preemption notification not combined with the re-grant: {delayed:?}"
    );
}

#[test]
fn recycled_activations_are_reused() {
    // §4.3: discarded activations returned in bulk become cheap cached
    // vessels; activation ids repeat across upcalls.
    let mut k = kernel(1);
    let log = LogHandle::new();
    let mut script = Vec::new();
    for _ in 0..6 {
        script.push(Act::Call(Syscall::Io {
            dur: SimDuration::from_millis(2),
        }));
    }
    script.push(Act::Call(Syscall::RecycleActivations { upto: u64::MAX }));
    for _ in 0..6 {
        script.push(Act::Call(Syscall::Io {
            dur: SimDuration::from_millis(2),
        }));
    }
    probe_space(&mut k, &log, script);
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked, "{out:?}");
    // Count distinct vp ids across all polls; with recycling it must be
    // well below the number of upcalls.
    let mut vps: Vec<u32> = log.0.borrow().polls.iter().map(|(vp, _)| vp.0).collect();
    let total_polls = vps.len();
    vps.sort_unstable();
    vps.dedup();
    assert!(
        vps.len() < total_polls,
        "no activation reuse: {} distinct vps in {} polls",
        vps.len(),
        total_polls
    );
}

#[test]
fn processor_idle_hint_releases_cpu_to_needy_space() {
    // Table 3: "This processor is idle — preempt this processor if
    // another address space needs it."
    let mut k = kernel(2);
    let log_a = LogHandle::new();
    // A claims both CPUs, then reports one idle.
    let mut rt_a = ProbeRuntime::new(
        log_a.clone(),
        vec![
            Act::Call(Syscall::SetDesiredProcessors { total: 2 }),
            Act::Run(40_000),
            // Second VP (arrives via AddProcessor): reports idle and spins.
            Act::Call(Syscall::ProcessorIdle),
            Act::Run(40_000),
            Act::Run(40_000),
        ],
    );
    rt_a.done_when_empty = true;
    k.add_space(SpaceSpec::user_level(
        "a",
        Box::new(rt_a),
        Box::new(ComputeBody::null()),
    ));
    let log_b = LogHandle::new();
    let mut spec = SpaceSpec::user_level(
        "b",
        Box::new(ProbeRuntime::new(log_b.clone(), vec![Act::Run(2_000)])),
        Box::new(ComputeBody::null()),
    );
    spec.start_at = SimTime::from_millis(3);
    k.add_space(spec);
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked, "{out:?}");
    // B got a processor (its upcall log is non-empty) even though A held
    // both; the allocator preferred A's idle-hinted processor.
    assert!(!log_b.upcalls().is_empty(), "b never ran");
    assert!(k.space_completion(AsId(1)).is_some());
}

#[test]
fn upcall_page_fault_defers_delivery() {
    // §3.1: "an upcall to notify the program of a page fault may in turn
    // page fault on the same location; the kernel must check for this,
    // and when it occurs, delay the subsequent upcall until the page
    // fault completes."
    let mut k = kernel(1);
    let log = LogHandle::new();
    let mut spec = SpaceSpec::user_level(
        "pf",
        Box::new(ProbeRuntime::new(log.clone(), vec![Act::Run(100)])),
        Box::new(ComputeBody::null()),
    );
    spec.mem_pages = Some(4); // paging enabled; runtime page not resident
    k.add_space(spec);
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked, "{out:?}");
    // The first upcall could only be delivered after the 50 ms runtime-
    // page read.
    assert!(k.space_start(AsId(0)).is_some(), "space never started");
    let first_work = k.space_completion(AsId(0)).expect("did not finish");
    assert!(
        first_work >= SimTime::from_millis(50),
        "upcall was not deferred for the page read: done at {first_work}"
    );
    assert_eq!(k.space_metrics(AsId(0)).page_faults.get(), 1);
}

#[test]
fn preempt_vp_syscall_interrupts_own_processor() {
    // §3.1: the user level can ask the kernel to interrupt one of its own
    // processors (to reschedule a lower-priority user thread).
    let mut k = kernel(2);
    let log = LogHandle::new();
    let mut rt = ProbeRuntime::new(
        log.clone(),
        vec![
            Act::Call(Syscall::SetDesiredProcessors { total: 2 }),
            Act::Run(30_000),
            // On the second processor: ask the kernel to interrupt the
            // first activation (activation ids start at 0 for this space).
            Act::Call(Syscall::PreemptVp { vp: VpId(0) }),
            // Enough trailing work to outlive the Preempted upcall's
            // delivery prologue (~1.2 ms on the prototype cost model).
            Act::Run(5_000),
            Act::Run(5_000),
            Act::Run(100),
        ],
    );
    rt.done_when_empty = true;
    probe_space_with(&mut k, rt);
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked, "{out:?}");
    let preempted: Vec<_> = log
        .all_events()
        .into_iter()
        .filter(|e| matches!(e, UpcallEvent::Preempted { vp, .. } if vp.0 == 0))
        .collect();
    assert!(
        !preempted.is_empty(),
        "PreemptVp produced no Preempted upcall: {:?}",
        log.upcalls()
    );
}

fn probe_space_with(k: &mut Kernel, rt: ProbeRuntime) -> AsId {
    k.add_space(SpaceSpec::user_level(
        "probe",
        Box::new(rt),
        Box::new(ComputeBody::null()),
    ))
}

#[test]
fn debugger_stops_without_upcalls() {
    // §4.4: a debug-stopped activation moves to a logical processor; no
    // upcalls result from stopping or resuming it.
    let mut k = kernel(2);
    let log = LogHandle::new();
    probe_space(&mut k, &log, vec![Act::Run(1_000), Act::Run(1_000)]);
    // Boot the space: run until the first activation is dispatched.
    // (Run a few events by using a time-limited sub-run.)
    // Simplest: run fully once to learn the activation id, then do a
    // fresh kernel and intervene mid-run is not possible from outside the
    // loop; instead exercise stop/resume after completion on a live act:
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked);
    // All upcalls were AddProcessor only (no Preempted/Blocked at all).
    for batch in log.upcalls() {
        for ev in batch {
            assert!(matches!(ev, UpcallEvent::AddProcessor { .. }), "{ev:?}");
        }
    }
    // Debug API behaves sanely on non-running activations.
    assert!(!k.debug_stop(ActId(0)));
    assert!(!k.debug_resume(ActId(0)));
    assert!(!k.is_debug_stopped(ActId(0)));
}

#[test]
fn invariant_running_activations_equal_processors() {
    // §3.1's invariant is asserted inside the kernel after every event in
    // debug builds; a mixed run with blocking and reallocation exercises
    // it heavily. Reaching completion without panicking is the assertion.
    let mut k = kernel(3);
    for i in 0..3 {
        let log = LogHandle::new();
        let mut script = vec![Act::Call(Syscall::SetDesiredProcessors { total: 2 })];
        for _ in 0..4 {
            script.push(Act::Run(500));
            script.push(Act::Call(Syscall::Io {
                dur: SimDuration::from_millis(1 + i),
            }));
        }
        let mut spec = SpaceSpec::user_level(
            format!("mix-{i}"),
            Box::new(ProbeRuntime::new(log, script)),
            Box::new(ComputeBody::null()),
        );
        spec.start_at = SimTime::from_micros(i * 700);
        k.add_space(spec);
    }
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked, "{out:?}");
}

#[test]
fn remainder_processors_are_time_sliced_between_spaces() {
    // §4.1: one processor, two equal-priority spaces that both want it —
    // the allocator must time-slice it so both make progress.
    let mut k = kernel(1);
    let log_a = LogHandle::new();
    let log_b = LogHandle::new();
    let work = |log: &LogHandle| {
        let script = (0..8).map(|_| Act::Run(30_000)).collect();
        ProbeRuntime::new(log.clone(), script)
    };
    k.add_space(SpaceSpec::user_level(
        "a",
        Box::new(work(&log_a)),
        Box::new(ComputeBody::null()),
    ));
    k.add_space(SpaceSpec::user_level(
        "b",
        Box::new(work(&log_b)),
        Box::new(ComputeBody::null()),
    ));
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked, "{out:?}");
    let done_a = k.space_completion(AsId(0)).expect("a done");
    let done_b = k.space_completion(AsId(1)).expect("b done");
    // Each space has 240 ms of work; serial-without-rotation would finish
    // A at ~240 ms and B at ~480 ms. With the quantum rotation both finish
    // in the last quarter of the run.
    let later = done_a.max(done_b);
    let earlier = done_a.min(done_b);
    assert!(
        earlier.as_nanos() * 4 > later.as_nanos() * 3,
        "remainder not time-sliced: {earlier} vs {later}"
    );
    // Both spaces were preempted along the way (the rotation's signature).
    assert!(
        k.space_metrics(AsId(0)).preemptions.get() >= 1
            && k.space_metrics(AsId(1)).preemptions.get() >= 1,
        "no rotation preemptions"
    );
}
