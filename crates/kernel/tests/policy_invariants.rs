//! Property tests of the §4.1 allocation invariants over *every* built-in
//! [`AllocPolicy`] — the contract the trait documents:
//!
//! 1. Work conservation: `sum(targets) == min(total_cpus, sum(demands))` —
//!    no processor idles while any space has unmet demand, and the
//!    allocation never exceeds the machine.
//! 2. Demand cap: `targets[i] <= spaces[i].demand` — a space is never
//!    handed processors it did not ask for.
//! 3. `pick_cpu` returns a member of the free set it was offered.
//! 4. Purity: the same view yields the same answer, twice — policies may
//!    not smuggle in host state (the determinism rule the module docs
//!    impose on policy authors).

use proptest::prelude::*;
use sa_kernel::{AllocPolicyKind, AllocView, SpaceDemand};

/// A random space: small demands so contention, saturation, and zero
/// (finished/unstarted) demand are all common; a few priority levels so
/// strata interact.
fn space() -> impl Strategy<Value = SpaceDemand> {
    (0u32..12, 0u8..4, 0u32..7).prop_map(|(demand, priority, assigned)| SpaceDemand {
        demand,
        priority,
        assigned,
    })
}

proptest! {
    #[test]
    fn every_policy_satisfies_the_alloc_invariants(
        spaces in prop::collection::vec(space(), 1..10),
        cpus in 0u32..33,
        rotation in 0u32..64,
        owners in prop::collection::vec((0u32..10, any::<bool>()), 33),
        free_mask in prop::collection::vec(any::<bool>(), 33),
    ) {
        let last_space: Vec<Option<u32>> = owners
            .iter()
            .map(|&(s, some)| some.then_some(s % spaces.len() as u32))
            .collect();
        let free: Vec<usize> = (0..cpus as usize).filter(|&c| free_mask[c]).collect();
        let view = AllocView {
            spaces: &spaces,
            total_cpus: cpus,
            rotation,
            last_space: &last_space,
        };
        let demand_sum: u32 = spaces.iter().map(|s| s.demand).sum();
        for kind in AllocPolicyKind::ALL {
            let policy = kind.build();
            let (targets, remainder) = policy.targets(&view);
            prop_assert_eq!(targets.len(), spaces.len(), "{}: one target per space", kind);
            for (i, (&t, s)) in targets.iter().zip(&spaces).enumerate() {
                prop_assert!(
                    t <= s.demand,
                    "{}: space {i} granted {t} > demand {}",
                    kind, s.demand
                );
            }
            prop_assert_eq!(
                targets.iter().sum::<u32>(),
                cpus.min(demand_sum),
                "{}: not work-conserving (cpus {}, demand {})",
                kind, cpus, demand_sum
            );
            // Purity: ask again, get the same answer.
            let (again, rem_again) = policy.targets(&view);
            prop_assert_eq!(&again, &targets, "{}: targets not a pure function", kind);
            prop_assert_eq!(rem_again, remainder, "{}: remainder not a pure function", kind);
            if !free.is_empty() {
                for s in 0..spaces.len() {
                    let cpu = policy.pick_cpu(&view, s, &free);
                    prop_assert!(
                        free.contains(&cpu),
                        "{}: pick_cpu({s}) chose cpu {cpu} outside the free set {:?}",
                        kind, free
                    );
                }
            }
        }
    }

    /// Rotating the remainder must move processors around *without*
    /// changing the total handed out or violating any per-space cap —
    /// rotation redistributes, it never creates or destroys capacity.
    #[test]
    fn rotation_preserves_totals(
        spaces in prop::collection::vec(space(), 1..8),
        cpus in 1u32..16,
    ) {
        let demand_sum: u32 = spaces.iter().map(|s| s.demand).sum();
        for kind in AllocPolicyKind::ALL {
            let policy = kind.build();
            let mut sums = Vec::new();
            for rotation in 0..8 {
                let view = AllocView {
                    spaces: &spaces,
                    total_cpus: cpus,
                    rotation,
                    last_space: &[],
                };
                let (targets, _) = policy.targets(&view);
                for (i, (&t, s)) in targets.iter().zip(&spaces).enumerate() {
                    prop_assert!(
                        t <= s.demand,
                        "{}: rotation {rotation}, space {i} over demand",
                        kind
                    );
                }
                sums.push(targets.iter().sum::<u32>());
            }
            prop_assert!(
                sums.iter().all(|&s| s == cpus.min(demand_sum)),
                "{}: rotation changed the allocated total: {:?}",
                kind, sums
            );
        }
    }
}
