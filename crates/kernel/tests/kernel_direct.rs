//! Integration tests for kernel-direct spaces (Topaz / Ultrix baselines):
//! the whole pipeline from thread bodies through the dispatcher, scheduler,
//! synchronization objects, I/O, paging and multiprogramming.

use sa_kernel::{DaemonSpec, Kernel, KernelConfig, KernelFlavor, SchedMode, SpaceSpec, NO_LOCK};
use sa_machine::program::{FnBody, Op, OpResult, ScriptBody};
use sa_machine::{ComputeBody, CostModel, CvId, LockId, PageId};
use sa_sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

fn cfg(cpus: u16, sched: SchedMode) -> KernelConfig {
    KernelConfig {
        cpus,
        sched,
        daemons: Vec::new(),
        seed: 7,
        ..KernelConfig::default()
    }
}

fn us(n: u64) -> SimDuration {
    SimDuration::from_micros(n)
}

#[test]
fn single_compute_thread_completes() {
    let mut k = Kernel::new(
        cfg(1, SchedMode::TopazNative),
        CostModel::firefly_prototype(),
    );
    let body = ScriptBody::new("w", vec![Op::Compute(us(1000))]);
    let id = k.add_space(SpaceSpec::kernel_direct(
        "app",
        KernelFlavor::TopazThreads,
        Box::new(body),
    ));
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked);
    let elapsed = k.space_elapsed(id).expect("completed");
    // Compute + trap + exit path; must exceed 1000 µs but not wildly.
    assert!(elapsed >= us(1000), "elapsed {elapsed}");
    assert!(elapsed < us(2000), "elapsed {elapsed}");
}

#[test]
fn fork_join_runs_child() {
    let mut k = Kernel::new(
        cfg(1, SchedMode::TopazNative),
        CostModel::firefly_prototype(),
    );
    let mut state = 0;
    let body = FnBody::new("parent", move |env| {
        state += 1;
        match state {
            1 => Op::Fork(Box::new(ComputeBody::new(us(500)))),
            2 => Op::Join(env.last.forked()),
            _ => Op::Exit,
        }
    });
    let id = k.add_space(SpaceSpec::kernel_direct(
        "app",
        KernelFlavor::TopazThreads,
        Box::new(body),
    ));
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked);
    let elapsed = k.space_elapsed(id).unwrap();
    // Child computes 500 µs plus Topaz fork overhead (~1 ms).
    assert!(elapsed > us(1400), "elapsed {elapsed}");
    assert!(elapsed < us(4000), "elapsed {elapsed}");
}

#[test]
fn fork_runs_in_parallel_on_two_cpus() {
    let run = |cpus: u16| {
        let mut k = Kernel::new(
            cfg(cpus, SchedMode::TopazNative),
            CostModel::firefly_prototype(),
        );
        let mut state = 0;
        let mut child = None;
        let body = FnBody::new("parent", move |env| {
            state += 1;
            match state {
                1 => Op::Fork(Box::new(ComputeBody::new(us(10_000)))),
                2 => {
                    child = Some(env.last.forked());
                    Op::Compute(us(10_000))
                }
                3 => Op::Join(child.unwrap()),
                _ => Op::Exit,
            }
        });
        let id = k.add_space(SpaceSpec::kernel_direct(
            "app",
            KernelFlavor::TopazThreads,
            Box::new(body),
        ));
        let out = k.run();
        assert!(!out.timed_out && !out.deadlocked);
        k.space_elapsed(id).unwrap()
    };
    let t1 = run(1);
    let t2 = run(2);
    assert!(
        t2.as_micros() < t1.as_micros() * 3 / 4,
        "2 cpus {t2} not faster than 1 cpu {t1}"
    );
    assert!(t2 >= us(10_000));
}

#[test]
fn signal_wait_ping_pong() {
    let mut k = Kernel::new(
        cfg(1, SchedMode::TopazNative),
        CostModel::firefly_prototype(),
    );
    const ROUNDS: u32 = 10;
    let cv_a = CvId(0);
    let cv_b = CvId(1);
    let mut state = 0;
    let mut rounds = 0;
    let a = FnBody::new("a", move |env| {
        // A forks B, then ping-pongs.
        state += 1;
        match state {
            1 => Op::Fork(Box::new(FnBody::new("b", {
                let mut done = 0;
                move |_| {
                    done += 1;
                    if done > ROUNDS as usize * 2 {
                        Op::Exit
                    } else if done % 2 == 1 {
                        Op::Wait {
                            cv: cv_b,
                            lock: NO_LOCK,
                        }
                    } else {
                        Op::Signal(cv_a)
                    }
                }
            }))),
            2 => {
                let _ = env.last.forked();
                Op::Signal(cv_b)
            }
            _ => {
                if state % 2 == 1 {
                    Op::Wait {
                        cv: cv_a,
                        lock: NO_LOCK,
                    }
                } else {
                    rounds += 1;
                    if rounds >= ROUNDS {
                        Op::Exit
                    } else {
                        Op::Signal(cv_b)
                    }
                }
            }
        }
    });
    let id = k.add_space(SpaceSpec::kernel_direct(
        "app",
        KernelFlavor::TopazThreads,
        Box::new(a),
    ));
    let out = k.run();
    assert!(!out.timed_out, "timed out");
    assert!(!out.deadlocked, "deadlocked");
    assert!(k.space_completion(id).is_some());
    // Each round costs roughly the Topaz signal-wait latency (~441 µs) in
    // each direction.
    let elapsed = k.space_elapsed(id).unwrap();
    assert!(elapsed > us(4_000), "elapsed {elapsed}");
}

#[test]
fn contended_app_lock_blocks_in_kernel() {
    let mut k = Kernel::new(
        cfg(2, SchedMode::TopazNative),
        CostModel::firefly_prototype(),
    );
    let lock = LockId(0);
    let order = Rc::new(RefCell::new(Vec::new()));
    let order_b = Rc::clone(&order);
    let order_a = Rc::clone(&order);
    let mut state = 0;
    let a = FnBody::new("a", move |_env| {
        state += 1;
        match state {
            1 => Op::Acquire(lock),
            2 => Op::Fork(Box::new(FnBody::new("b", {
                let order = Rc::clone(&order_b);
                let mut st = 0;
                move |_| {
                    st += 1;
                    match st {
                        1 => Op::Acquire(lock),
                        2 => {
                            order.borrow_mut().push("b-got-lock");
                            Op::Release(lock)
                        }
                        _ => Op::Exit,
                    }
                }
            }))),
            3 => Op::Compute(us(2_000)),
            4 => {
                order_a.borrow_mut().push("a-releasing");
                Op::Release(lock)
            }
            _ => Op::Exit,
        }
    });
    let id = k.add_space(SpaceSpec::kernel_direct(
        "app",
        KernelFlavor::TopazThreads,
        Box::new(a),
    ));
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked);
    assert!(k.space_completion(id).is_some());
    assert_eq!(*order.borrow(), vec!["a-releasing", "b-got-lock"]);
}

#[test]
fn io_blocks_for_its_duration() {
    let mut k = Kernel::new(
        cfg(1, SchedMode::TopazNative),
        CostModel::firefly_prototype(),
    );
    let body = ScriptBody::new("w", vec![Op::Io(SimDuration::from_millis(50))]);
    let id = k.add_space(SpaceSpec::kernel_direct(
        "app",
        KernelFlavor::TopazThreads,
        Box::new(body),
    ));
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked);
    let elapsed = k.space_elapsed(id).unwrap();
    assert!(elapsed >= SimDuration::from_millis(50));
    assert!(elapsed < SimDuration::from_millis(51));
    assert_eq!(k.space_metrics(id).disk_ops.get(), 1);
}

#[test]
fn page_faults_respect_lru() {
    let mut k = Kernel::new(
        cfg(1, SchedMode::TopazNative),
        CostModel::firefly_prototype(),
    );
    // Capacity 2; touch pages 1,2,1,2 (one fault each for 1 and 2), then 3
    // (fault), then 1 (still resident? no: LRU of cap 2 with 2,3 resident →
    // fault).
    let ops = vec![
        Op::MemRead(PageId(1)),
        Op::MemRead(PageId(2)),
        Op::MemRead(PageId(1)),
        Op::MemRead(PageId(2)),
        Op::MemRead(PageId(3)),
        Op::MemRead(PageId(1)),
    ];
    let mut spec = SpaceSpec::kernel_direct(
        "app",
        KernelFlavor::TopazThreads,
        Box::new(ScriptBody::new("w", ops)),
    );
    spec.mem_pages = Some(2);
    let id = k.add_space(spec);
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked);
    assert_eq!(k.space_metrics(id).page_faults.get(), 4);
}

#[test]
fn ultrix_flavor_is_heavier_than_topaz() {
    let run = |flavor: KernelFlavor| {
        let mut k = Kernel::new(
            cfg(1, SchedMode::TopazNative),
            CostModel::firefly_prototype(),
        );
        let mut state = 0;
        let body = FnBody::new("parent", move |env| {
            state += 1;
            match state {
                1 => Op::Fork(Box::new(ComputeBody::null())),
                2 => Op::Join(env.last.forked()),
                _ => Op::Exit,
            }
        });
        let id = k.add_space(SpaceSpec::kernel_direct("app", flavor, Box::new(body)));
        let out = k.run();
        assert!(!out.timed_out && !out.deadlocked);
        k.space_elapsed(id).unwrap()
    };
    let topaz = run(KernelFlavor::TopazThreads);
    let ultrix = run(KernelFlavor::UltrixProcesses);
    assert!(
        ultrix.as_micros() > topaz.as_micros() * 5,
        "ultrix {ultrix} vs topaz {topaz}"
    );
}

#[test]
fn multiprogramming_time_slices_two_spaces() {
    let mut k = Kernel::new(
        cfg(1, SchedMode::TopazNative),
        CostModel::firefly_prototype(),
    );
    let mk = || {
        Box::new(ScriptBody::new(
            "w",
            vec![Op::Compute(SimDuration::from_millis(200))],
        ))
    };
    let a = k.add_space(SpaceSpec::kernel_direct(
        "a",
        KernelFlavor::TopazThreads,
        mk(),
    ));
    let b = k.add_space(SpaceSpec::kernel_direct(
        "b",
        KernelFlavor::TopazThreads,
        mk(),
    ));
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked);
    let ta = k.space_completion(a).unwrap();
    let tb = k.space_completion(b).unwrap();
    // Both finish close to 400 ms: the quantum interleaves them.
    assert!(ta > SimTime::from_millis(300), "a at {ta}");
    assert!(tb > SimTime::from_millis(300), "b at {tb}");
    // And both suffered preemptions.
    assert!(
        k.space_metrics(a).preemptions.get() + k.space_metrics(b).preemptions.get() >= 3,
        "no time slicing happened"
    );
}

#[test]
fn daemons_preempt_low_priority_work_native() {
    let mut config = cfg(1, SchedMode::TopazNative);
    config.daemons = vec![DaemonSpec {
        period: SimDuration::from_millis(10),
        burst: SimDuration::from_millis(1),
    }];
    let mut k = Kernel::new(config, CostModel::firefly_prototype());
    let body = ScriptBody::new("w", vec![Op::Compute(SimDuration::from_millis(100))]);
    let id = k.add_space(SpaceSpec::kernel_direct(
        "app",
        KernelFlavor::TopazThreads,
        Box::new(body),
    ));
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked);
    // Daemon bursts stole time: completion well past 100 ms of pure compute.
    let elapsed = k.space_elapsed(id).unwrap();
    assert!(
        elapsed > SimDuration::from_millis(105),
        "daemons did not run: {elapsed}"
    );
    assert!(k.space_metrics(id).preemptions.get() >= 5);
}

#[test]
fn allocator_mode_runs_kernel_direct_spaces() {
    let mut k = Kernel::new(
        cfg(2, SchedMode::SaAllocator),
        CostModel::firefly_prototype(),
    );
    let mk = || {
        Box::new(ScriptBody::new(
            "w",
            vec![Op::Compute(SimDuration::from_millis(50))],
        ))
    };
    let a = k.add_space(SpaceSpec::kernel_direct(
        "a",
        KernelFlavor::TopazThreads,
        mk(),
    ));
    let b = k.add_space(SpaceSpec::kernel_direct(
        "b",
        KernelFlavor::TopazThreads,
        mk(),
    ));
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked);
    // With 2 CPUs and space-sharing, each space gets its own CPU and both
    // finish in ~50 ms — no time-slicing interference.
    for id in [a, b] {
        let elapsed = k.space_elapsed(id).unwrap();
        assert!(elapsed < SimDuration::from_millis(52), "elapsed {elapsed}");
    }
}

#[test]
fn deterministic_given_same_seed() {
    let run = |seed: u64| {
        let mut config = cfg(2, SchedMode::TopazNative);
        config.seed = seed;
        config.daemons = DaemonSpec::topaz_default_set();
        let mut k = Kernel::new(config, CostModel::firefly_prototype());
        let mut state = 0;
        let body = FnBody::new("parent", move |env| {
            state += 1;
            match state {
                1 => Op::Fork(Box::new(ComputeBody::new(us(30_000)))),
                2 => {
                    let _ = env.last.forked();
                    Op::Compute(us(30_000))
                }
                _ => Op::Exit,
            }
        });
        let id = k.add_space(SpaceSpec::kernel_direct(
            "app",
            KernelFlavor::TopazThreads,
            Box::new(body),
        ));
        let out = k.run();
        assert!(!out.timed_out && !out.deadlocked);
        k.space_completion(id).unwrap()
    };
    assert_eq!(run(11), run(11));
    assert_eq!(run(12), run(12));
}

#[test]
fn op_results_flow_to_bodies() {
    let mut k = Kernel::new(
        cfg(1, SchedMode::TopazNative),
        CostModel::firefly_prototype(),
    );
    let seen = Rc::new(RefCell::new(Vec::new()));
    let seen2 = Rc::clone(&seen);
    let mut state = 0;
    let body = FnBody::new("w", move |env| {
        seen2.borrow_mut().push(env.last);
        state += 1;
        match state {
            1 => Op::Compute(us(10)),
            2 => Op::Yield,
            _ => Op::Exit,
        }
    });
    k.add_space(SpaceSpec::kernel_direct(
        "app",
        KernelFlavor::TopazThreads,
        Box::new(body),
    ));
    let out = k.run();
    assert!(!out.timed_out && !out.deadlocked);
    assert_eq!(
        *seen.borrow(),
        vec![OpResult::Start, OpResult::Done, OpResult::Done]
    );
}
