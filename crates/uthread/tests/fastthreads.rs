//! Driver-level tests of the FastThreads runtime: the `UserRuntime`
//! contract is exercised directly (a hand-rolled "kernel" of a few lines),
//! so thread scheduling, synchronization, upcall handling and
//! critical-section recovery can be asserted step by step.

use sa_kernel::upcall::{
    PollReason, RtEnv, SavedContext, Syscall, SyscallOutcome, UpcallEvent, UserRuntime, VpAction,
    WorkKind,
};
use sa_kernel::VpId;
use sa_machine::program::{FnBody, Op, ScriptBody};
use sa_machine::{ComputeBody, CostModel, CvId, LockId};
use sa_sim::{SimDuration, SimTime, Trace};
use sa_uthread::{CriticalSectionMode, FastThreads, FtConfig, SpinPolicy};
use std::cell::RefCell;
use std::rc::Rc;

/// A miniature driver: advances one VP at a time, accumulating virtual
/// time, until the runtime gives up or a step budget runs out.
struct Driver {
    rt: FastThreads,
    cost: CostModel,
    trace: Trace,
    now: SimTime,
}

impl Driver {
    fn new(cfg: FtConfig, main: Box<dyn sa_machine::program::ThreadBody>) -> Self {
        let mut rt = FastThreads::new(cfg);
        rt.set_main(main);
        Driver {
            rt,
            cost: CostModel::firefly_prototype(),
            trace: Trace::disabled(),
            now: SimTime::ZERO,
        }
    }

    fn poll(&mut self, vp: u32, reason: PollReason) -> VpAction {
        let mut env = RtEnv::new(self.now, &self.cost, 0, &mut self.trace);
        self.rt.poll(&mut env, VpId(vp), reason)
    }

    fn deliver(&mut self, vp: u32, events: &[UpcallEvent]) {
        let mut env = RtEnv::new(self.now, &self.cost, 0, &mut self.trace);
        self.rt.deliver_upcall(&mut env, VpId(vp), events);
    }

    /// Runs VP `vp` until it returns something other than `Run` or a
    /// processor-allocation hint (hints are acknowledged, as the kernel
    /// would), accumulating time. Returns the terminal action and elapsed
    /// time.
    fn drain(&mut self, vp: u32, mut reason: PollReason) -> (VpAction, SimDuration) {
        let mut elapsed = SimDuration::ZERO;
        for _ in 0..10_000 {
            match self.poll(vp, reason) {
                VpAction::Run(seg) => {
                    assert_ne!(seg.dur, SimDuration::MAX, "unexpected unbounded run");
                    elapsed += seg.dur;
                    self.now += seg.dur;
                    reason = PollReason::SegDone;
                }
                VpAction::Syscall {
                    call:
                        Syscall::SetDesiredProcessors { .. }
                        | Syscall::ProcessorIdle
                        | Syscall::RecycleActivations { .. },
                } => {
                    // Non-blocking allocation hints: acknowledge and go on.
                    self.now += SimDuration::from_micros(60);
                    reason = PollReason::SyscallDone(SyscallOutcome::Ok);
                }
                other => return (other, elapsed),
            }
        }
        panic!("runtime did not reach a terminal action");
    }
}

fn sa_cfg() -> FtConfig {
    FtConfig::scheduler_activations(4)
}

#[test]
fn boot_runs_main_to_exit_then_gives_up() {
    let mut d = Driver::new(
        sa_cfg(),
        Box::new(ComputeBody::new(SimDuration::from_micros(100))),
    );
    d.deliver(0, &[UpcallEvent::AddProcessor { decision: 0 }]);
    let (action, elapsed) = d.drain(0, PollReason::Fresh);
    assert!(matches!(action, VpAction::GiveUp), "{action:?}");
    assert!(elapsed >= SimDuration::from_micros(100));
    assert!(d.rt.quiescent());
}

#[test]
fn fork_join_at_runtime_level() {
    let mut state = 0;
    let main = FnBody::new("m", move |env| {
        state += 1;
        match state {
            1 => Op::Fork(Box::new(ComputeBody::new(SimDuration::from_micros(50)))),
            2 => Op::Join(env.last.forked()),
            _ => Op::Exit,
        }
    });
    let mut d = Driver::new(sa_cfg(), Box::new(main));
    d.deliver(0, &[UpcallEvent::AddProcessor { decision: 0 }]);
    let (action, elapsed) = d.drain(0, PollReason::Fresh);
    assert!(matches!(action, VpAction::GiveUp));
    // Child's 50 µs plus fork/join/dispatch overheads.
    assert!(elapsed > SimDuration::from_micros(80), "{elapsed}");
    assert!(d.rt.quiescent());
    assert_eq!(d.rt.stats.forks.get(), 1);
    assert_eq!(d.rt.stats.exits.get(), 2);
}

#[test]
fn uncontended_lock_stays_at_user_level() {
    let ops = vec![
        Op::Acquire(LockId(1)),
        Op::Compute(SimDuration::from_micros(10)),
        Op::Release(LockId(1)),
    ];
    let mut d = Driver::new(sa_cfg(), Box::new(ScriptBody::new("l", ops)));
    d.deliver(0, &[UpcallEvent::AddProcessor { decision: 0 }]);
    let (action, _) = d.drain(0, PollReason::Fresh);
    // No syscall was ever made: straight to GiveUp.
    assert!(matches!(action, VpAction::GiveUp));
    assert_eq!(d.rt.stats.lock_fast.get(), 1);
    assert_eq!(d.rt.stats.lock_contended.get(), 0);
}

#[test]
fn io_emits_syscall_and_blocked_unblocked_round_trip() {
    let ops = vec![Op::Io(SimDuration::from_millis(1))];
    let mut d = Driver::new(sa_cfg(), Box::new(ScriptBody::new("io", ops)));
    d.deliver(0, &[UpcallEvent::AddProcessor { decision: 0 }]);
    let (action, _) = d.drain(0, PollReason::Fresh);
    let VpAction::Syscall { call } = action else {
        panic!("expected syscall, got {action:?}");
    };
    assert!(matches!(call, Syscall::Io { .. }));
    assert!(!d.rt.quiescent(), "quiescent with a thread entering I/O");
    // Activation 0 blocks in the kernel; a fresh activation 1 carries the
    // notification.
    d.deliver(
        1,
        &[UpcallEvent::Blocked {
            vp: VpId(0),
            seq: 1,
        }],
    );
    let (idle, _) = d.drain(1, PollReason::Fresh);
    // No other threads: the runtime idles (hysteresis spin, hint, or spin).
    assert!(
        !matches!(idle, VpAction::GiveUp),
        "gave up with blocked work"
    );
    assert!(!d.rt.quiescent());
    // The I/O completes; activation 2 delivers the unblock plus the idle
    // processor's preemption.
    d.deliver(
        2,
        &[
            UpcallEvent::Unblocked {
                vp: VpId(0),
                blocked_seq: 1,
                seq: 2,
                saved: SavedContext::empty(),
                outcome: SyscallOutcome::IoDone,
            },
            UpcallEvent::Preempted {
                vp: VpId(1),
                saved: SavedContext::empty(),
                seq: 3,
                decision: 0,
            },
        ],
    );
    let (end, _) = d.drain(2, PollReason::Fresh);
    assert!(matches!(end, VpAction::GiveUp), "{end:?}");
    assert!(d.rt.quiescent());
    assert_eq!(d.rt.stats.unblocks.get(), 1);
}

#[test]
fn preempted_compute_resumes_with_saved_remainder() {
    let mut d = Driver::new(
        sa_cfg(),
        Box::new(ComputeBody::new(SimDuration::from_millis(10))),
    );
    d.deliver(0, &[UpcallEvent::AddProcessor { decision: 0 }]);
    // Boot overheads, then the 10 ms segment appears.
    let seg = loop {
        match d.poll(0, PollReason::Fresh) {
            VpAction::Run(seg) if seg.dur == SimDuration::from_millis(10) => break seg,
            VpAction::Run(seg) => {
                d.now += seg.dur;
            }
            other => panic!("unexpected {other:?}"),
        }
    };
    // The kernel preempts 4 ms in; activation 1 gets the notification.
    d.now += SimDuration::from_millis(4);
    let saved = SavedContext {
        cookie: seg.cookie,
        remaining: SimDuration::from_millis(6),
        kind: WorkKind::UserWork,
    };
    d.deliver(
        1,
        &[UpcallEvent::Preempted {
            vp: VpId(0),
            saved,
            seq: 1,
            decision: 0,
        }],
    );
    // The runtime processes the event, re-dispatches the thread, and the
    // very next user segment must be the 6 ms remainder.
    let mut reason = PollReason::Fresh;
    let mut total_user = SimDuration::ZERO;
    loop {
        match d.poll(1, reason) {
            VpAction::Run(s) => {
                if s.kind == WorkKind::UserWork {
                    total_user += s.dur;
                }
                d.now += s.dur;
                reason = PollReason::SegDone;
            }
            VpAction::GiveUp => break,
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(total_user, SimDuration::from_millis(6), "remainder wrong");
    assert!(d.rt.quiescent());
    assert_eq!(d.rt.stats.preemptions_seen.get(), 1);
}

#[test]
fn preempted_lock_holder_is_recovered_first() {
    // A thread computes while holding a lock; it is preempted mid-hold.
    // §3.3: the upcall handler must continue it through the critical
    // section before doing anything else.
    let ops = vec![
        Op::Acquire(LockId(9)),
        Op::Compute(SimDuration::from_millis(8)),
        Op::Release(LockId(9)),
        Op::Compute(SimDuration::from_micros(30)),
    ];
    let mut d = Driver::new(sa_cfg(), Box::new(ScriptBody::new("cs", ops)));
    d.deliver(0, &[UpcallEvent::AddProcessor { decision: 0 }]);
    let seg = loop {
        match d.poll(0, PollReason::Fresh) {
            VpAction::Run(seg) if seg.dur == SimDuration::from_millis(8) => break seg,
            VpAction::Run(seg) => d.now += seg.dur,
            other => panic!("unexpected {other:?}"),
        }
    };
    d.now += SimDuration::from_millis(3);
    let saved = SavedContext {
        cookie: seg.cookie,
        remaining: SimDuration::from_millis(5),
        kind: WorkKind::UserWork,
    };
    d.deliver(
        1,
        &[UpcallEvent::Preempted {
            vp: VpId(0),
            saved,
            seq: 1,
            decision: 0,
        }],
    );
    let (end, _) = d.drain(1, PollReason::Fresh);
    assert!(matches!(end, VpAction::GiveUp));
    assert_eq!(
        d.rt.stats.recoveries.get(),
        1,
        "critical-section recovery did not run"
    );
    assert!(d.rt.quiescent());
}

#[test]
fn no_recovery_mode_skips_recovery() {
    let ops = vec![
        Op::Acquire(LockId(9)),
        Op::Compute(SimDuration::from_millis(8)),
        Op::Release(LockId(9)),
    ];
    let mut cfg = sa_cfg();
    cfg.critical = CriticalSectionMode::NoRecovery;
    let mut d = Driver::new(cfg, Box::new(ScriptBody::new("cs", ops)));
    d.deliver(0, &[UpcallEvent::AddProcessor { decision: 0 }]);
    let seg = loop {
        match d.poll(0, PollReason::Fresh) {
            VpAction::Run(seg) if seg.dur == SimDuration::from_millis(8) => break seg,
            VpAction::Run(seg) => d.now += seg.dur,
            other => panic!("unexpected {other:?}"),
        }
    };
    let saved = SavedContext {
        cookie: seg.cookie,
        remaining: SimDuration::from_millis(5),
        kind: WorkKind::UserWork,
    };
    d.now += SimDuration::from_millis(3);
    d.deliver(
        1,
        &[UpcallEvent::Preempted {
            vp: VpId(0),
            saved,
            seq: 1,
            decision: 0,
        }],
    );
    let (end, _) = d.drain(1, PollReason::Fresh);
    assert!(matches!(end, VpAction::GiveUp));
    assert_eq!(d.rt.stats.recoveries.get(), 0);
}

#[test]
fn user_cv_ping_pong_without_kernel() {
    const ROUNDS: usize = 5;
    let cv_a = CvId(0);
    let cv_b = CvId(1);
    let none = LockId::NONE;
    let mut st = 0;
    let main = FnBody::new("a", move |_| {
        st += 1;
        match st {
            1 => Op::Fork(Box::new(FnBody::new("b", {
                let mut k = 0;
                move |_| {
                    k += 1;
                    if k > 2 * ROUNDS {
                        Op::Exit
                    } else if k % 2 == 1 {
                        Op::Wait {
                            cv: cv_b,
                            lock: none,
                        }
                    } else {
                        Op::Signal(cv_a)
                    }
                }
            }))),
            _ => {
                let k = st - 1;
                if k > 2 * ROUNDS {
                    Op::Exit
                } else if k % 2 == 1 {
                    Op::Signal(cv_b)
                } else {
                    Op::Wait {
                        cv: cv_a,
                        lock: none,
                    }
                }
            }
        }
    });
    let mut d = Driver::new(sa_cfg(), Box::new(main));
    d.deliver(0, &[UpcallEvent::AddProcessor { decision: 0 }]);
    let (end, _) = d.drain(0, PollReason::Fresh);
    // Fully user-level: terminates without a single syscall on one VP.
    assert!(matches!(end, VpAction::GiveUp), "{end:?}");
    assert!(d.rt.quiescent());
}

#[test]
fn contended_lock_spins_then_blocks_per_policy() {
    // Two threads fight over a lock on one VP: the second must block at
    // user level (no processor to spin on a uniprocessor — the spin seg is
    // bounded and expires).
    let lock = LockId(5);
    let mut st = 0;
    let main = FnBody::new("m", move |_| {
        st += 1;
        match st {
            1 => Op::Acquire(lock),
            2 => Op::Fork(Box::new(ScriptBody::new(
                "w",
                vec![
                    Op::Acquire(lock),
                    Op::Compute(SimDuration::from_micros(5)),
                    Op::Release(lock),
                ],
            ))),
            3 => Op::Yield, // let the child hit the held lock
            4 => Op::Release(lock),
            _ => Op::Exit,
        }
    });
    let mut cfg = sa_cfg();
    cfg.lock_policy = SpinPolicy::SpinThenBlock {
        spin: SimDuration::from_micros(30),
    };
    let mut d = Driver::new(cfg, Box::new(main));
    d.deliver(0, &[UpcallEvent::AddProcessor { decision: 0 }]);
    let (end, _) = d.drain(0, PollReason::Fresh);
    assert!(matches!(end, VpAction::GiveUp), "{end:?}");
    assert_eq!(d.rt.stats.lock_contended.get(), 1);
    assert_eq!(d.rt.stats.spin_blocks.get(), 1);
    assert!(d.rt.quiescent());
}

#[test]
fn kthread_substrate_reports_vps_and_never_gets_upcalls() {
    let cfg = FtConfig::kernel_threads(3);
    let rt = FastThreads::new(cfg);
    assert_eq!(rt.kthread_vps(), Some(3));
    let sa = FastThreads::new(sa_cfg());
    assert_eq!(sa.kthread_vps(), None);
}

#[test]
fn idle_vp_spins_on_kthread_substrate() {
    // Original FastThreads: a VP with no work burns its processor in the
    // idle loop — invisible to the kernel (§2.2).
    let mut d = Driver::new(
        FtConfig::kernel_threads(2),
        Box::new(ComputeBody::new(SimDuration::from_micros(50))),
    );
    // VP 0 polls first and takes the main thread.
    let _ = d.poll(0, PollReason::Fresh);
    // VP 1 has no work at all; it must spin, not give up or trap.
    let action = d.poll(1, PollReason::Fresh);
    assert!(
        matches!(
            action,
            VpAction::Spin {
                kind: WorkKind::IdleSpin,
                ..
            }
        ),
        "{action:?}"
    );
}

#[test]
fn sa_idle_vp_hints_after_hysteresis() {
    // New FastThreads: an idle processor spins briefly, then makes the
    // Table 3 "processor idle" call, then spins awaiting reallocation.
    let shared = Rc::new(RefCell::new(0));
    let _ = shared;
    let mut d = Driver::new(
        sa_cfg(),
        Box::new(ComputeBody::new(SimDuration::from_micros(10))),
    );
    d.deliver(0, &[UpcallEvent::AddProcessor { decision: 0 }]);
    // Finish the main thread.
    let (end, _) = d.drain(0, PollReason::Fresh);
    assert!(matches!(end, VpAction::GiveUp));
    // A second processor arrives while there is nothing to do (the kernel
    // may do this; the runtime must hint and spin, since live==0 it gives
    // up instead).
    d.deliver(1, &[UpcallEvent::AddProcessor { decision: 0 }]);
    let (a, _) = d.drain(1, PollReason::Fresh);
    assert!(matches!(a, VpAction::GiveUp));
}

#[test]
fn explicit_flag_mode_charges_more_per_op() {
    let run = |critical: CriticalSectionMode| {
        let mut cfg = sa_cfg();
        cfg.critical = critical;
        let mut st = 0;
        let main = FnBody::new("m", move |env| {
            st += 1;
            match st {
                1 => Op::Fork(Box::new(ComputeBody::null())),
                2 => Op::Join(env.last.forked()),
                _ => Op::Exit,
            }
        });
        let mut d = Driver::new(cfg, Box::new(main));
        d.deliver(0, &[UpcallEvent::AddProcessor { decision: 0 }]);
        let (_, elapsed) = d.drain(0, PollReason::Fresh);
        elapsed
    };
    let zero = run(CriticalSectionMode::ZeroOverhead);
    let flagged = run(CriticalSectionMode::ExplicitFlag);
    assert!(
        flagged > zero,
        "explicit flag {flagged} not slower than zero-overhead {zero}"
    );
}
