//! Pluggable ready-queue disciplines for the user-level scheduler.
//!
//! The point of user-level thread management (§2.1) is that the
//! application chooses its own scheduling discipline without kernel
//! involvement. This module makes that concrete: the ready-list *data
//! structure* is a policy behind [`ReadyPolicy`], while everything else
//! in [`crate::FastThreads`] — dispatch costing, upcall processing,
//! idle hysteresis, §3.1 preemption requests — is mechanism that works
//! with any discipline.
//!
//! A policy owns every ready thread. The mechanism tells it when a
//! thread becomes runnable ([`ReadyPolicy::push`], or
//! [`ReadyPolicy::push_cold`] for yielders that must go behind every
//! other runnable thread) and asks for the next thread to dispatch on a
//! processor ([`ReadyPolicy::pop`], or [`ReadyPolicy::pop_best`] under
//! priority scheduling). The returned [`Pick`] reports how the pick was
//! found — how many queues were scanned, whether it came off another
//! processor's queue — so the mechanism can charge the Table 4
//! dispatch costs identically to the old inlined code.
//!
//! # Determinism rules for policy authors
//!
//! Ready policies run inside a deterministic simulation: a policy must
//! be a pure function of its push/pop history (no host randomness, no
//! clocks, no hashing-dependent iteration), and ties must break by
//! stable criteria (queue position, slot index). Costs are *charged by
//! the mechanism* from the [`Pick`] — a policy never charges time
//! itself, it only reports `scan_steps`.

use crate::types::UtId;
use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

/// How a ready thread was found, so dispatch can be costed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pick {
    /// The thread to dispatch.
    pub t: UtId,
    /// Ready-queue scan steps to charge (`ut_scan_step` each).
    pub scan_steps: u64,
    /// The thread came off another processor's queue (counts as a steal).
    pub stolen: bool,
}

/// A ready-queue discipline.
///
/// `Send` because whole simulations are fanned across host threads by
/// the sweep harness.
pub trait ReadyPolicy: Send {
    /// Stable policy name (CLI `--ready=` value).
    fn name(&self) -> &'static str;

    /// Grows internal per-processor state to `n` slots.
    fn ensure_slots(&mut self, n: usize);

    /// A thread became runnable on `slot` (the hot end of the queue).
    fn push(&mut self, slot: usize, t: UtId);

    /// A yielding thread goes to the *cold* end: every other runnable
    /// thread must be dispatched before it runs again.
    fn push_cold(&mut self, slot: usize, t: UtId);

    /// Next thread for `slot` to dispatch, if any.
    fn pop(&mut self, slot: usize) -> Option<Pick>;

    /// Highest-priority runnable thread anywhere (`prio` maps a thread
    /// to its priority; higher wins). Used when
    /// `FtConfig::priority_scheduling` is on.
    fn pop_best(&mut self, slot: usize, prio: &dyn Fn(UtId) -> u8) -> Option<Pick>;

    /// Ready threads associated with `slot` (diagnostics only).
    fn len(&self, slot: usize) -> usize;

    /// Ready threads in total (diagnostics only).
    fn total(&self) -> usize;
}

/// The paper's §4.2 discipline and the package default: per-processor
/// LIFO ready lists with idle stealing. A processor pops its own list
/// newest-first (cache-warm), and an idle processor scans the other
/// lists round-robin from its own index, stealing the *oldest* entry —
/// charging one `ut_scan_step` per list visited.
#[derive(Debug, Default)]
pub struct LocalLifo {
    queues: Vec<VecDeque<UtId>>,
}

impl ReadyPolicy for LocalLifo {
    fn name(&self) -> &'static str {
        "local"
    }

    fn ensure_slots(&mut self, n: usize) {
        if self.queues.len() < n {
            self.queues.resize_with(n, VecDeque::new);
        }
    }

    fn push(&mut self, slot: usize, t: UtId) {
        self.queues[slot].push_back(t);
    }

    fn push_cold(&mut self, slot: usize, t: UtId) {
        self.queues[slot].push_front(t);
    }

    fn pop(&mut self, slot: usize) -> Option<Pick> {
        if let Some(t) = self.queues[slot].pop_back() {
            return Some(Pick {
                t,
                scan_steps: 0,
                stolen: false,
            });
        }
        let n = self.queues.len();
        for k in 1..n {
            let victim = (slot + k) % n;
            if let Some(t) = self.queues[victim].pop_front() {
                return Some(Pick {
                    t,
                    scan_steps: k as u64,
                    stolen: true,
                });
            }
        }
        None
    }

    fn pop_best(&mut self, slot: usize, prio: &dyn Fn(UtId) -> u8) -> Option<Pick> {
        // Ties: the latest entry on its list wins, preserving LIFO
        // within a priority level.
        let mut best: Option<(usize, usize, u8)> = None;
        for (si, q) in self.queues.iter().enumerate() {
            for (pos, &t) in q.iter().enumerate() {
                let p = prio(t);
                if best.is_none_or(|(_, _, bp)| p >= bp) {
                    best = Some((si, pos, p));
                }
            }
        }
        let (vslot, pos, _) = best?;
        let t = self.queues[vslot].remove(pos).expect("picked position");
        let stolen = vslot != slot;
        Some(Pick {
            t,
            scan_steps: u64::from(stolen),
            stolen,
        })
    }

    fn len(&self, slot: usize) -> usize {
        self.queues.get(slot).map_or(0, VecDeque::len)
    }

    fn total(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

/// One machine-wide FIFO ready queue: every processor dispatches the
/// oldest runnable thread. Fair (bounded waiting) but cache-cold, and
/// on a real machine the single queue is a contention point — the
/// trade-off §4.2 argues against for fine-grained parallelism.
#[derive(Debug, Default)]
pub struct GlobalFifo {
    queue: VecDeque<UtId>,
}

impl ReadyPolicy for GlobalFifo {
    fn name(&self) -> &'static str {
        "global-fifo"
    }

    fn ensure_slots(&mut self, _n: usize) {}

    fn push(&mut self, _slot: usize, t: UtId) {
        self.queue.push_back(t);
    }

    fn push_cold(&mut self, _slot: usize, t: UtId) {
        // FIFO's tail *is* the cold end: everything ahead runs first.
        self.queue.push_back(t);
    }

    fn pop(&mut self, _slot: usize) -> Option<Pick> {
        self.queue.pop_front().map(|t| Pick {
            t,
            scan_steps: 0,
            stolen: false,
        })
    }

    fn pop_best(&mut self, _slot: usize, prio: &dyn Fn(UtId) -> u8) -> Option<Pick> {
        // Ties: the oldest entry wins, preserving FIFO within a
        // priority level.
        let mut best: Option<(usize, u8)> = None;
        for (pos, &t) in self.queue.iter().enumerate() {
            let p = prio(t);
            if best.is_none_or(|(_, bp)| p > bp) {
                best = Some((pos, p));
            }
        }
        let (pos, _) = best?;
        let t = self.queue.remove(pos).expect("picked position");
        Some(Pick {
            t,
            scan_steps: 0,
            stolen: false,
        })
    }

    fn len(&self, slot: usize) -> usize {
        if slot == 0 {
            self.queue.len()
        } else {
            0
        }
    }

    fn total(&self) -> usize {
        self.queue.len()
    }
}

/// One machine-wide LIFO ready stack: every processor dispatches the
/// newest runnable thread (depth-first, cache-warm, unfair under load).
#[derive(Debug, Default)]
pub struct GlobalLifo {
    queue: VecDeque<UtId>,
}

impl ReadyPolicy for GlobalLifo {
    fn name(&self) -> &'static str {
        "global-lifo"
    }

    fn ensure_slots(&mut self, _n: usize) {}

    fn push(&mut self, _slot: usize, t: UtId) {
        self.queue.push_back(t);
    }

    fn push_cold(&mut self, _slot: usize, t: UtId) {
        // Bottom of the stack: every other runnable thread pops first.
        self.queue.push_front(t);
    }

    fn pop(&mut self, _slot: usize) -> Option<Pick> {
        self.queue.pop_back().map(|t| Pick {
            t,
            scan_steps: 0,
            stolen: false,
        })
    }

    fn pop_best(&mut self, _slot: usize, prio: &dyn Fn(UtId) -> u8) -> Option<Pick> {
        // Ties: the newest entry wins, preserving LIFO within a
        // priority level.
        let mut best: Option<(usize, u8)> = None;
        for (pos, &t) in self.queue.iter().enumerate() {
            let p = prio(t);
            if best.is_none_or(|(_, bp)| p >= bp) {
                best = Some((pos, p));
            }
        }
        let (pos, _) = best?;
        let t = self.queue.remove(pos).expect("picked position");
        Some(Pick {
            t,
            scan_steps: 0,
            stolen: false,
        })
    }

    fn len(&self, slot: usize) -> usize {
        if slot == 0 {
            self.queue.len()
        } else {
            0
        }
    }

    fn total(&self) -> usize {
        self.queue.len()
    }
}

/// Selector for the built-in ready-queue disciplines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadyPolicyKind {
    /// [`LocalLifo`] — per-processor LIFO with idle stealing (§4.2, the
    /// package default).
    #[default]
    LocalLifo,
    /// [`GlobalFifo`] — one machine-wide FIFO queue.
    GlobalFifo,
    /// [`GlobalLifo`] — one machine-wide LIFO stack.
    GlobalLifo,
}

impl ReadyPolicyKind {
    /// Every built-in discipline, in CLI listing order.
    pub const ALL: [ReadyPolicyKind; 3] = [
        ReadyPolicyKind::LocalLifo,
        ReadyPolicyKind::GlobalFifo,
        ReadyPolicyKind::GlobalLifo,
    ];

    /// Stable name (CLI `--ready=` value).
    pub fn name(self) -> &'static str {
        match self {
            ReadyPolicyKind::LocalLifo => "local",
            ReadyPolicyKind::GlobalFifo => "global-fifo",
            ReadyPolicyKind::GlobalLifo => "global-lifo",
        }
    }

    /// Instantiates the discipline as an enum-dispatched
    /// [`ReadyPolicySelect`] (the runtime's storage form: built-in
    /// disciplines dispatch statically, see the type's docs).
    pub fn build_select(self) -> ReadyPolicySelect {
        match self {
            ReadyPolicyKind::LocalLifo => ReadyPolicySelect::LocalLifo(LocalLifo::default()),
            ReadyPolicyKind::GlobalFifo => ReadyPolicySelect::GlobalFifo(GlobalFifo::default()),
            ReadyPolicyKind::GlobalLifo => ReadyPolicySelect::GlobalLifo(GlobalLifo::default()),
        }
    }

    /// Instantiates the discipline as a trait object.
    pub fn build(self) -> Box<dyn ReadyPolicy> {
        match self {
            ReadyPolicyKind::LocalLifo => Box::<LocalLifo>::default(),
            ReadyPolicyKind::GlobalFifo => Box::<GlobalFifo>::default(),
            ReadyPolicyKind::GlobalLifo => Box::<GlobalLifo>::default(),
        }
    }
}

impl fmt::Display for ReadyPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ReadyPolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "local" | "local-lifo" => Ok(ReadyPolicyKind::LocalLifo),
            "global-fifo" | "fifo" => Ok(ReadyPolicyKind::GlobalFifo),
            "global-lifo" | "lifo" => Ok(ReadyPolicyKind::GlobalLifo),
            other => Err(format!(
                "unknown ready policy '{other}' (expected one of: {})",
                ReadyPolicyKind::ALL.map(|k| k.name()).join(", ")
            )),
        }
    }
}

/// Enum-dispatched ready-policy holder: the runtime's storage form.
///
/// Every simulation configures one of the built-in disciplines via
/// [`ReadyPolicyKind`], so the `Box<dyn ReadyPolicy>` indirection on the
/// dispatch path was provably monomorphic; this enum lets the compiler
/// resolve (and inline) those calls statically while [`Custom`] keeps the
/// open trait for external disciplines — and doubles as the
/// pre-flattening dynamic-dispatch shape for differential tests.
///
/// [`Custom`]: ReadyPolicySelect::Custom
pub enum ReadyPolicySelect {
    /// [`LocalLifo`], statically dispatched.
    LocalLifo(LocalLifo),
    /// [`GlobalFifo`], statically dispatched.
    GlobalFifo(GlobalFifo),
    /// [`GlobalLifo`], statically dispatched.
    GlobalLifo(GlobalLifo),
    /// Any other discipline, behind the original trait object.
    Custom(Box<dyn ReadyPolicy>),
}

impl ReadyPolicySelect {
    /// Stable policy name (see [`ReadyPolicy::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            ReadyPolicySelect::LocalLifo(p) => p.name(),
            ReadyPolicySelect::GlobalFifo(p) => p.name(),
            ReadyPolicySelect::GlobalLifo(p) => p.name(),
            ReadyPolicySelect::Custom(p) => p.name(),
        }
    }

    /// See [`ReadyPolicy::ensure_slots`].
    pub fn ensure_slots(&mut self, n: usize) {
        match self {
            ReadyPolicySelect::LocalLifo(p) => p.ensure_slots(n),
            ReadyPolicySelect::GlobalFifo(p) => p.ensure_slots(n),
            ReadyPolicySelect::GlobalLifo(p) => p.ensure_slots(n),
            ReadyPolicySelect::Custom(p) => p.ensure_slots(n),
        }
    }

    /// See [`ReadyPolicy::push`].
    #[inline]
    pub fn push(&mut self, slot: usize, t: UtId) {
        match self {
            ReadyPolicySelect::LocalLifo(p) => p.push(slot, t),
            ReadyPolicySelect::GlobalFifo(p) => p.push(slot, t),
            ReadyPolicySelect::GlobalLifo(p) => p.push(slot, t),
            ReadyPolicySelect::Custom(p) => p.push(slot, t),
        }
    }

    /// See [`ReadyPolicy::push_cold`].
    #[inline]
    pub fn push_cold(&mut self, slot: usize, t: UtId) {
        match self {
            ReadyPolicySelect::LocalLifo(p) => p.push_cold(slot, t),
            ReadyPolicySelect::GlobalFifo(p) => p.push_cold(slot, t),
            ReadyPolicySelect::GlobalLifo(p) => p.push_cold(slot, t),
            ReadyPolicySelect::Custom(p) => p.push_cold(slot, t),
        }
    }

    /// See [`ReadyPolicy::pop`].
    #[inline]
    pub fn pop(&mut self, slot: usize) -> Option<Pick> {
        match self {
            ReadyPolicySelect::LocalLifo(p) => p.pop(slot),
            ReadyPolicySelect::GlobalFifo(p) => p.pop(slot),
            ReadyPolicySelect::GlobalLifo(p) => p.pop(slot),
            ReadyPolicySelect::Custom(p) => p.pop(slot),
        }
    }

    /// See [`ReadyPolicy::pop_best`].
    pub fn pop_best(&mut self, slot: usize, prio: &dyn Fn(UtId) -> u8) -> Option<Pick> {
        match self {
            ReadyPolicySelect::LocalLifo(p) => p.pop_best(slot, prio),
            ReadyPolicySelect::GlobalFifo(p) => p.pop_best(slot, prio),
            ReadyPolicySelect::GlobalLifo(p) => p.pop_best(slot, prio),
            ReadyPolicySelect::Custom(p) => p.pop_best(slot, prio),
        }
    }

    /// See [`ReadyPolicy::len`].
    pub fn len(&self, slot: usize) -> usize {
        match self {
            ReadyPolicySelect::LocalLifo(p) => p.len(slot),
            ReadyPolicySelect::GlobalFifo(p) => p.len(slot),
            ReadyPolicySelect::GlobalLifo(p) => p.len(slot),
            ReadyPolicySelect::Custom(p) => p.len(slot),
        }
    }

    /// See [`ReadyPolicy::total`].
    pub fn total(&self) -> usize {
        match self {
            ReadyPolicySelect::LocalLifo(p) => p.total(),
            ReadyPolicySelect::GlobalFifo(p) => p.total(),
            ReadyPolicySelect::GlobalLifo(p) => p.total(),
            ReadyPolicySelect::Custom(p) => p.total(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> UtId {
        UtId(n)
    }

    #[test]
    fn local_pops_own_newest_then_steals_oldest() {
        let mut p = LocalLifo::default();
        p.ensure_slots(3);
        p.push(0, t(1));
        p.push(0, t(2));
        p.push(2, t(3));
        p.push(2, t(4));
        // Own list: LIFO.
        assert_eq!(
            p.pop(0),
            Some(Pick {
                t: t(2),
                scan_steps: 0,
                stolen: false
            })
        );
        // Slot 1 is empty: steal the *oldest* from slot 2, one scan
        // step away ((1+1) % 3 = 2).
        assert_eq!(
            p.pop(1),
            Some(Pick {
                t: t(3),
                scan_steps: 1,
                stolen: true
            })
        );
        // Yielders go to the cold end: stolen before, popped last.
        p.push_cold(0, t(5));
        assert_eq!(p.pop(0).unwrap().t, t(1));
        assert_eq!(p.pop(0).unwrap().t, t(5));
        // Own list dry: the scan reaches slot 2's leftover, two steps away.
        assert_eq!(
            p.pop(0),
            Some(Pick {
                t: t(4),
                scan_steps: 2,
                stolen: true
            })
        );
        assert_eq!(p.pop(0), None);
        assert_eq!(p.total(), 0);
    }

    #[test]
    fn global_fifo_is_fair_and_global_lifo_is_not() {
        let mut f = GlobalFifo::default();
        let mut l = GlobalLifo::default();
        for q in [&mut f as &mut dyn ReadyPolicy, &mut l] {
            q.ensure_slots(2);
            q.push(0, t(1));
            q.push(1, t(2));
        }
        assert_eq!(f.pop(1).unwrap().t, t(1), "FIFO: oldest first");
        assert_eq!(l.pop(0).unwrap().t, t(2), "LIFO: newest first");
        // Neither global queue ever charges scan steps or steals.
        assert!(!f.pop(0).unwrap().stolen);
        assert_eq!(l.pop(1).unwrap().scan_steps, 0);
    }

    #[test]
    fn pop_best_breaks_ties_by_discipline() {
        let prio = |x: UtId| if x.0 >= 10 { 2u8 } else { 1 };
        let mut p = LocalLifo::default();
        p.ensure_slots(2);
        p.push(0, t(10));
        p.push(1, t(11));
        // Latest wins a tie; coming off slot 1's queue from slot 0
        // counts as a steal with one scan step.
        assert_eq!(
            p.pop_best(0, &prio),
            Some(Pick {
                t: t(11),
                scan_steps: 1,
                stolen: true
            })
        );
        assert_eq!(p.pop_best(0, &prio).unwrap().t, t(10));
        assert_eq!(p.pop_best(0, &prio), None);

        let mut f = GlobalFifo::default();
        f.push(0, t(10));
        f.push(0, t(11));
        f.push(0, t(1));
        assert_eq!(f.pop_best(0, &prio).unwrap().t, t(10), "FIFO tie: oldest");
        let mut l = GlobalLifo::default();
        l.push(0, t(10));
        l.push(0, t(11));
        l.push(0, t(1));
        assert_eq!(l.pop_best(0, &prio).unwrap().t, t(11), "LIFO tie: newest");
    }

    #[test]
    fn kind_round_trips_names() {
        for kind in ReadyPolicyKind::ALL {
            assert_eq!(kind.name().parse::<ReadyPolicyKind>().unwrap(), kind);
            assert_eq!(kind.build().name(), kind.name());
        }
        assert!("bogus".parse::<ReadyPolicyKind>().is_err());
    }
}
