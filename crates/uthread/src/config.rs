//! Configuration of the FastThreads-like runtime.

use crate::ready::ReadyPolicyKind;
use crate::sync::SpinPolicy;
use sa_sim::SimDuration;

/// Which substrate the thread package runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Substrate {
    /// Kernel threads as virtual processors — **original FastThreads**.
    /// The kernel delivers no events; VPs are scheduled obliviously
    /// (the integration problems of §2.2).
    KernelThreads {
        /// Number of VPs to create (typically the machine's CPU count).
        vps: u32,
    },
    /// Scheduler activations — **new FastThreads** (the paper's system).
    SchedulerActivations,
}

/// How critical sections interact with preemption (§3.3, §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CriticalSectionMode {
    /// The paper's zero-overhead scheme: an exact copy of each critical
    /// section lets the upcall handler continue a preempted lock holder
    /// with **no cost on the common-case path**.
    ZeroOverhead,
    /// Recovery via an explicit per-thread flag set/cleared around every
    /// critical section — the §5.1 ablation (34→49 µs Null Fork,
    /// 42→48 µs Signal-Wait).
    ExplicitFlag,
    /// No recovery at all: preempted lock holders simply go back on the
    /// ready list while spinners burn their processors — demonstrates why
    /// §3.3 is necessary.
    NoRecovery,
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct FtConfig {
    /// Substrate choice.
    pub substrate: Substrate,
    /// Critical-section handling.
    pub critical: CriticalSectionMode,
    /// User-lock contention policy.
    pub lock_policy: SpinPolicy,
    /// How long an idle processor spins before telling the kernel it is
    /// available for reallocation (§4.2's hysteresis).
    pub idle_hysteresis: SimDuration,
    /// Upper bound on processors this application will request.
    pub max_processors: u32,
    /// Discarded activations are returned to the kernel in batches of this
    /// size (§4.3's bulk recycling).
    pub recycle_batch: u32,
    /// Schedule user threads by priority (set by `Op::ForkPrio`): the
    /// dispatcher picks the highest-priority runnable thread, and — on
    /// scheduler activations — readying a thread whose priority exceeds a
    /// running thread's asks the kernel to interrupt that processor
    /// (§3.1's priority preemption). Off by default: the paper's default
    /// FastThreads policy is plain per-processor LIFO.
    pub priority_scheduling: bool,
    /// Ready-queue discipline (§2.1: the application picks its own
    /// scheduling policy); defaults to the paper's per-processor LIFO
    /// lists with idle stealing.
    pub ready_policy: ReadyPolicyKind,
}

impl FtConfig {
    /// New FastThreads on scheduler activations with the paper's defaults.
    pub fn scheduler_activations(max_processors: u32) -> Self {
        FtConfig {
            substrate: Substrate::SchedulerActivations,
            critical: CriticalSectionMode::ZeroOverhead,
            lock_policy: SpinPolicy::default(),
            idle_hysteresis: SimDuration::from_micros(200),
            max_processors,
            recycle_batch: 4,
            priority_scheduling: false,
            ready_policy: ReadyPolicyKind::default(),
        }
    }

    /// Original FastThreads on `vps` kernel-thread virtual processors.
    pub fn kernel_threads(vps: u32) -> Self {
        FtConfig {
            substrate: Substrate::KernelThreads { vps },
            critical: CriticalSectionMode::ZeroOverhead,
            lock_policy: SpinPolicy::default(),
            idle_hysteresis: SimDuration::from_micros(200),
            max_processors: vps,
            recycle_batch: 4,
            priority_scheduling: false,
            ready_policy: ReadyPolicyKind::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let sa = FtConfig::scheduler_activations(6);
        assert_eq!(sa.substrate, Substrate::SchedulerActivations);
        assert_eq!(sa.max_processors, 6);
        assert_eq!(sa.ready_policy, ReadyPolicyKind::LocalLifo);
        let kt = FtConfig::kernel_threads(4);
        assert_eq!(kt.substrate, Substrate::KernelThreads { vps: 4 });
    }
}
