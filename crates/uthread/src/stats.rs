//! Runtime-level statistics.

use sa_sim::stats::{Counter, Histogram};

/// Operation counts maintained by the thread package.
#[derive(Debug, Default, Clone)]
pub struct FtStats {
    /// User threads created.
    pub forks: Counter,
    /// User threads exited.
    pub exits: Counter,
    /// User-level context switches (dispatches of a thread onto a VP).
    pub dispatches: Counter,
    /// Threads stolen from another processor's ready list.
    pub steals: Counter,
    /// Lock acquisitions that found the lock free.
    pub lock_fast: Counter,
    /// Lock acquisitions that had to spin or block.
    pub lock_contended: Counter,
    /// Spins that gave up and blocked (spin-then-block policy).
    pub spin_blocks: Counter,
    /// Upcall batches processed.
    pub upcalls: Counter,
    /// Critical-section recoveries performed (§3.3).
    pub recoveries: Counter,
    /// Processor-allocation hints sent to the kernel (Table 3).
    pub hints: Counter,
    /// Bulk activation-recycle calls made (§4.3).
    pub recycles: Counter,
    /// Threads readied by unblock notifications.
    pub unblocks: Counter,
    /// Preemption notifications processed.
    pub preemptions_seen: Counter,
    /// Time threads spend on a ready list before being dispatched
    /// (ready → running scheduling delay).
    pub ready_wait: Histogram,
    /// Time from the start of a critical-section recovery (§3.3) until the
    /// recovered thread relinquishes control back to the upcall.
    pub recovery_time: Histogram,
}
