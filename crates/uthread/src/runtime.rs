//! The FastThreads-like user-level thread scheduler.
//!
//! One implementation serves both substrates ([`Substrate`]): on kernel
//! threads it is "original FastThreads" (no kernel events, oblivious VP
//! scheduling); on scheduler activations it is the paper's system —
//! processing Table 2 upcalls, issuing Table 3 hints, recovering preempted
//! critical sections (§3.3), and recycling activations in bulk (§4.3).
//!
//! ## Execution model
//!
//! The kernel drives each virtual processor by calling
//! [`UserRuntime::poll`]; the runtime answers one action at a time. All
//! deferred work lives in explicit continuation queues — per-thread
//! (`Utcb::cont`) for operations a thread is in the middle of, and
//! per-slot (`Slot::cont`) for runtime-level work (upcall processing,
//! dispatch overhead). Because a preempted processor's continuations
//! simply stay in those queues, the kernel's saved "machine state"
//! (a [`SavedContext`]) plus these queues reconstruct the thread exactly,
//! which is what makes Table 2's `Preempted`/`Unblocked` protocol work.
//!
//! A design rule inherited from real hardware: every `Step` re-validates
//! its preconditions when it executes, because other processors run during
//! the segment that precedes it.

use crate::config::{CriticalSectionMode, FtConfig, Substrate};
use crate::ready::{ReadyPolicy, ReadyPolicySelect};
use crate::stats::FtStats;
use crate::sync::{HandOff, SpinPolicy, UCv, ULock};
use crate::types::{cookie, seg, Awaiting, RtMicro, Slot, SpinCtx, Step, TcbStore, UtId, UtState};
use sa_kernel::upcall::{
    PollReason, RtEnv, SavedContext, Syscall, UpcallEvent, UserRuntime, VpAction, VpSeg, WorkKind,
};
use sa_kernel::VpId;
use sa_kernel::NO_LOCK;
use sa_machine::ids::{CvId, LockId};
use sa_machine::program::{Op, OpResult, StepEnv, ThreadBody};
use sa_machine::CostModel;
use sa_sim::{SimDuration, TraceEvent};

/// The user-level thread package.
pub struct FastThreads {
    cfg: FtConfig,
    tcbs: TcbStore,
    slots: Vec<Slot>,
    /// The ready-queue discipline (every ready thread lives here; see
    /// [`crate::ready`] for the policy contract).
    ready: ReadyPolicySelect,
    /// VP id → slot index. A slab rather than a hash map: this is read on
    /// every poll and upcall delivery, and VP ids (kernel-thread indexes
    /// or activation ids) are dense — the kernel allocates activation ids
    /// from a compact table and recycles them (§4.3).
    vp_slot: Vec<Option<u32>>,
    /// Blocking episode (`Blocked.seq`) → the user thread that episode
    /// carried into the kernel. Keyed by the kernel's per-episode sequence
    /// number, not by activation id: activation ids are recycled (§4.3)
    /// and a recycled id's events can be observed out of order when a
    /// preempted processor's unprocessed events migrate (§3.1), so pairing
    /// by id can hand thread A's wakeup to thread B. A `BTreeMap` keeps
    /// iteration (and hence any diagnostics) deterministic.
    blocked_threads: std::collections::BTreeMap<u64, UtId>,
    /// Episodes whose `Unblocked` notification was processed before the
    /// matching `Blocked` event.
    early_unblocks: std::collections::BTreeSet<u64>,
    /// Largest `n` such that every kernel notification with `seq <= n`
    /// has been processed; reported to the kernel in the bulk-recycle
    /// call so husks are never reused while a notification about them is
    /// still in flight (see `UpcallEvent::seq`).
    notify_floor: u64,
    /// Processed notification seqs above `notify_floor` (out-of-order
    /// arrivals waiting for the gap below them to fill).
    notify_seen: std::collections::BTreeSet<u64>,
    /// Reusable buffer for migrating slot continuations (see
    /// [`FastThreads::deactivate_slot`]); empty between calls.
    scratch_cont: Vec<RtMicro>,
    /// Reusable buffer for migrating unprocessed upcall events; empty
    /// between calls.
    scratch_tasks: Vec<UpcallEvent>,
    /// Reusable buffer for condition-variable broadcast wakeups; empty
    /// between calls.
    scratch_cv: Vec<(UtId, LockId)>,
    /// Lock table indexed by `LockId` (workload lock ids are small and
    /// dense; `None` marks ids never used). A direct-indexed table —
    /// the `HashMap` it replaces paid a hash per lock operation, which
    /// showed up in the engine's event-loop profile.
    locks: Vec<Option<ULock>>,
    /// Condition-variable table indexed by `CvId`; same layout rationale
    /// as `locks`.
    cvs: Vec<Option<UCv>>,
    /// The main thread, created at `set_main`, waiting for the first VP.
    boot_thread: Option<UtId>,
    /// Runnable + running + spinning threads.
    busy: u32,
    /// Threads not yet exited.
    live: u32,
    /// A `SetDesiredProcessors` hint should be sent at the next chance.
    hint_due: bool,
    /// We told the kernel we want more processors and it has not granted
    /// any since — no point repeating the hint (§3.2).
    notified_want_more: bool,
    /// Discarded activation husks not yet returned to the kernel.
    discard_backlog: u32,
    /// A §3.1 priority-preemption request to issue at the next chance.
    preempt_request: Option<VpId>,
    /// Set whenever `hint_due`, `discard_backlog`, or `preempt_request`
    /// gains a pending value: [`FastThreads::fill`] checks this one flag
    /// per poll instead of walking the three kernel-notification checks
    /// on the hot path (cleared when all three are serviced).
    kernel_attention: bool,
    /// Precomputed per-op durations, built on first poll (see
    /// [`CostCache`]).
    cost_cache: Option<CostCache>,
    /// Statistics.
    pub stats: FtStats,
}

/// Precomputed per-operation durations.
///
/// Interpreting an op used to re-sum its cost-model terms — plus the
/// config-dependent critical-flag and busy-accounting surcharges — on
/// every call. All of those are constant for a given `FtConfig` +
/// [`CostModel`] (the kernel's cost model never changes mid-run), so they
/// are folded once here the first time the runtime is polled.
#[derive(Debug, Clone, Copy)]
struct CostCache {
    /// SA busy-count accounting surcharge (zero on kernel threads).
    acct: SimDuration,
    /// Lock acquire fast path: test-and-set + lock body + flag.
    acquire: SimDuration,
    /// Lock release fast path.
    release: SimDuration,
    /// Condition-variable wait/signal/broadcast.
    cv_op: SimDuration,
    /// Fork: TCB alloc + init + ready push, two critical sections, acct.
    fork: SimDuration,
    /// Join bookkeeping.
    join: SimDuration,
    /// Exit: cleanup + TCB free, two critical sections, acct.
    exit: SimDuration,
    /// Ready-list push (yield / requeue paths).
    enqueue: SimDuration,
    /// Ready-list push plus busy accounting (unblock requeue).
    enqueue_acct: SimDuration,
    /// Fixed part of a dispatch: dequeue + context switch + flag.
    dispatch: SimDuration,
}

impl FastThreads {
    /// Creates a runtime with the given configuration.
    pub fn new(cfg: FtConfig) -> Self {
        let slots: Vec<Slot> = match cfg.substrate {
            Substrate::KernelThreads { vps } => (0..vps).map(|_| Slot::new()).collect(),
            Substrate::SchedulerActivations => Vec::new(),
        };
        let mut ready = cfg.ready_policy.build_select();
        ready.ensure_slots(slots.len());
        FastThreads {
            cfg,
            tcbs: TcbStore::default(),
            slots,
            ready,
            vp_slot: Vec::new(),
            blocked_threads: std::collections::BTreeMap::new(),
            early_unblocks: std::collections::BTreeSet::new(),
            notify_floor: 0,
            notify_seen: std::collections::BTreeSet::new(),
            scratch_cont: Vec::new(),
            scratch_tasks: Vec::new(),
            scratch_cv: Vec::new(),
            locks: Vec::new(),
            cvs: Vec::new(),
            boot_thread: None,
            busy: 0,
            live: 0,
            hint_due: false,
            kernel_attention: false,
            notified_want_more: false,
            discard_backlog: 0,
            preempt_request: None,
            cost_cache: None,
            stats: FtStats::default(),
        }
    }

    /// True when running on scheduler activations.
    fn is_sa(&self) -> bool {
        matches!(self.cfg.substrate, Substrate::SchedulerActivations)
    }

    /// Replaces the ready discipline with a custom trait-object policy —
    /// the pre-flattening dynamic-dispatch shape (differential tests use
    /// this to pin enum dispatch to the `Box<dyn>` path byte-for-byte).
    /// Call before any thread runs; existing ready threads are not
    /// migrated.
    pub fn set_ready_policy(&mut self, p: Box<dyn ReadyPolicy>) {
        let mut p = ReadyPolicySelect::Custom(p);
        p.ensure_slots(self.slots.len());
        self.ready = p;
    }

    /// Bytes resident in the hot (dispatch-path) half of the TCB slab.
    pub fn tcb_hot_bytes(&self) -> usize {
        self.tcbs.hot_bytes_resident()
    }

    /// Bytes resident in the whole TCB slab (hot + cold rows; excludes
    /// heap owned by boxed bodies and continuation queues).
    pub fn tcb_bytes(&self) -> usize {
        self.tcbs.bytes_resident()
    }

    /// TCB rows ever allocated — the high-water mark of concurrently
    /// live threads, since exited TCBs are recycled through free lists.
    pub fn tcb_rows(&self) -> usize {
        self.tcbs.len()
    }

    /// Extra per-critical-section cost in `ExplicitFlag` mode; zero in the
    /// paper's zero-overhead scheme (§4.3).
    fn flag_cost(&self, cost: &CostModel) -> SimDuration {
        match self.cfg.critical {
            CriticalSectionMode::ExplicitFlag => cost.explicit_flag,
            _ => SimDuration::ZERO,
        }
    }

    /// Busy-count accounting cost (scheduler activations only; this is the
    /// Table 4 delta over original FastThreads).
    fn busy_acct(&self, cost: &CostModel) -> SimDuration {
        if self.is_sa() {
            cost.sa_busy_accounting
        } else {
            SimDuration::ZERO
        }
    }

    /// The folded per-op duration table, built on first use.
    #[inline]
    fn costs(&mut self, c: &CostModel) -> CostCache {
        if let Some(cc) = self.cost_cache {
            return cc;
        }
        let flag = self.flag_cost(c);
        let acct = self.busy_acct(c);
        let cc = CostCache {
            acct,
            acquire: c.test_and_set + c.ut_lock_fast + flag,
            release: c.ut_lock_fast + flag,
            cv_op: c.ut_cv_op + flag + acct,
            fork: c.ut_tcb_alloc + c.ut_tcb_init + c.ut_ready_enqueue + flag + flag + acct,
            join: c.ut_join,
            exit: c.ut_exit_cleanup + c.ut_tcb_free + flag + flag + acct,
            enqueue: c.ut_ready_enqueue + flag,
            enqueue_acct: c.ut_ready_enqueue + flag + acct,
            dispatch: c.ut_ready_dequeue + c.ut_ctx_switch + flag,
        };
        self.cost_cache = Some(cc);
        cc
    }

    // ---- TCB and queue primitives -------------------------------------

    /// Allocates a TCB from the slot's free list (or grows the table).
    fn alloc_tcb(&mut self, slot: usize, body: Box<dyn ThreadBody>) -> UtId {
        let id = match self.slots[slot].free_tcbs.pop() {
            Some(id) => id,
            None => self.tcbs.push_free(),
        };
        self.tcbs.reinit(id, body);
        id
    }

    /// Hands a thread to the ready policy (hot end) and wakes an idle
    /// processor if one is spinning. Under priority scheduling, a readied
    /// thread that outranks a running one asks the kernel to interrupt the
    /// lowest-priority processor (§3.1).
    fn ready_thread(&mut self, slot: usize, t: UtId, env: &mut RtEnv<'_>) {
        debug_assert_ne!(self.tcbs.hot[t.index()].state, UtState::Free);
        self.tcbs.hot[t.index()].state = UtState::Ready;
        self.tcbs.hot[t.index()].ready_since = Some(env.now);
        self.ready.push(slot, t);
        self.kick_an_idler(env);
        if self.cfg.priority_scheduling && self.is_sa() {
            let new_prio = self.tcbs.hot[t.index()].prio;
            // Find the lowest-priority running thread; if it ranks below
            // the newcomer and no processor is idle, request a preemption.
            let any_idle = self
                .slots
                .iter()
                .any(|s| s.active_vp.is_some() && s.spin == Some(SpinCtx::Idle));
            if !any_idle {
                // Exclude the processor doing the readying: it reaches its
                // own dispatch naturally (the kernel is only needed to
                // interrupt *other* processors, §3.1).
                let victim = self
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|&(si, s)| {
                        si != slot && s.active_vp.is_some() && s.recovering.is_none()
                    })
                    .filter_map(|(_, s)| {
                        let cur = s.current?;
                        Some((
                            s.active_vp.expect("filtered"),
                            self.tcbs.hot[cur.index()].prio,
                        ))
                    })
                    .min_by_key(|&(_, p)| p);
                if let Some((vp, p)) = victim {
                    if p < new_prio {
                        self.preempt_request = Some(vp);
                        self.kernel_attention = true;
                    }
                }
            }
        }
    }

    /// Kicks one idle-spinning VP, if any.
    fn kick_an_idler(&mut self, env: &mut RtEnv<'_>) {
        for s in &self.slots {
            if s.spin == Some(SpinCtx::Idle) {
                if let Some(vp) = s.active_vp {
                    env.kick(vp);
                    return;
                }
            }
        }
    }

    /// Notes a busy-count change and decides whether the kernel must be
    /// told (§3.2: only transitions matter, and only when the kernel has
    /// not already been asked).
    fn note_busy_changed(&mut self) {
        if !self.is_sa() {
            return;
        }
        let held = self.active_slot_count() as u32;
        if self.busy > held && !self.notified_want_more {
            self.hint_due = true;
            self.kernel_attention = true;
        }
    }

    /// The Table 4 "+5 µs" component: under scheduler activations, a
    /// dispatch of a thread resumed from a condition wait or a preemption
    /// checks whether saved state (condition codes) must be restored.
    fn resume_check_cost(&self, t: UtId, c: &CostModel) -> SimDuration {
        if self.is_sa() && self.tcbs.hot[t.index()].needs_resume_check {
            c.sa_resume_check
        } else {
            SimDuration::ZERO
        }
    }

    fn active_slot_count(&self) -> usize {
        self.slots.iter().filter(|s| s.active_vp.is_some()).count()
    }

    /// The lock's state in `locks`, created empty on first use. A free
    /// function over the field so callers keep disjoint borrows of the
    /// rest of `self` (as `HashMap::entry` allowed).
    fn lock_slot(locks: &mut Vec<Option<ULock>>, l: LockId) -> &mut ULock {
        debug_assert_ne!(l, LockId::NONE, "lock table access with the NONE sentinel");
        let i = l.index();
        if locks.len() <= i {
            locks.resize_with(i + 1, || None);
        }
        locks[i].get_or_insert_with(ULock::default)
    }

    /// The known lock's state, `None` for ids never used.
    fn lock_get_mut(&mut self, l: LockId) -> Option<&mut ULock> {
        self.locks.get_mut(l.index())?.as_mut()
    }

    /// The condition variable's state in `cvs`, created empty on first
    /// use; same borrow shape as [`FastThreads::lock_slot`].
    fn cv_slot(cvs: &mut Vec<Option<UCv>>, cv: CvId) -> &mut UCv {
        let i = cv.index();
        if cvs.len() <= i {
            cvs.resize_with(i + 1, || None);
        }
        cvs[i].get_or_insert_with(UCv::default)
    }

    /// Binds a VP to a slot (reusing an inactive slot if possible).
    fn bind_slot(&mut self, vp: VpId) -> usize {
        if let Some(Some(idx)) = self.vp_slot.get(vp.index()) {
            return *idx as usize;
        }
        let idx = match self.cfg.substrate {
            Substrate::KernelThreads { .. } => vp.index(),
            Substrate::SchedulerActivations => self
                .slots
                .iter()
                .position(|s| s.active_vp.is_none())
                .unwrap_or_else(|| {
                    self.slots.push(Slot::new());
                    self.slots.len() - 1
                }),
        };
        self.ready.ensure_slots(self.slots.len());
        let s = &mut self.slots[idx];
        s.active_vp = Some(vp);
        s.hysteresis_done = false;
        s.idle_hinted = false;
        if self.vp_slot.len() <= vp.index() {
            self.vp_slot.resize(vp.index() + 1, None);
        }
        self.vp_slot[vp.index()] = Some(idx as u32);
        idx
    }

    /// Unbinds a slot whose activation was stopped or blocked; returns the
    /// thread that was loaded (if any) after migrating the slot-level
    /// continuation and unprocessed tasks to `dest`.
    fn deactivate_slot(&mut self, vp: VpId, dest: usize) -> Option<UtId> {
        let idx = self.vp_slot.get_mut(vp.index())?.take()? as usize;
        let t = {
            let s = &mut self.slots[idx];
            s.active_vp = None;
            s.spin = None;
            s.awaiting = None;
            s.recovering = None;
            s.recovering_since = None;
            s.hysteresis_done = false;
            s.idle_hinted = false;
            s.current.take()
        };
        if idx != dest {
            // "A user-level context switch can be made to continue
            // processing the event" (§3.1): interrupted upcall handling and
            // the events it had not reached continue on the new processor.
            // Staged through persistent scratch buffers (two `self.slots`
            // entries cannot be borrowed at once) so the per-upcall path
            // allocates nothing in the steady state.
            debug_assert!(self.scratch_cont.is_empty() && self.scratch_tasks.is_empty());
            let mut cont = std::mem::take(&mut self.scratch_cont);
            let mut tasks = std::mem::take(&mut self.scratch_tasks);
            cont.extend(self.slots[idx].cont.drain(..));
            tasks.extend(self.slots[idx].tasks.drain(..));
            self.slots[dest].cont.extend(cont.drain(..));
            self.slots[dest].tasks.extend(tasks.drain(..));
            self.scratch_cont = cont;
            self.scratch_tasks = tasks;
        }
        t
    }

    /// First boot: place the main thread on this slot's ready list.
    fn ensure_booted(&mut self, slot: usize, env: &mut RtEnv<'_>) {
        if let Some(main) = self.boot_thread.take() {
            self.ready_thread(slot, main, env);
        }
    }

    // ---- Op interpretation --------------------------------------------

    /// Steps the current thread's body and queues the micro-ops of its
    /// next operation.
    fn step_body(&mut self, slot: usize, t: UtId, env: &mut RtEnv<'_>) -> Option<VpSeg> {
        let last = std::mem::replace(&mut self.tcbs.cold[t.index()].next_result, OpResult::Done);
        let step_env = StepEnv {
            now: env.now,
            self_ref: t.as_ref(),
            last,
        };
        let mut body = self.tcbs.cold[t.index()]
            .body
            .take()
            .expect("running thread without body");
        let op = body.step(&step_env);
        self.tcbs.cold[t.index()].body = Some(body);
        self.interpret(slot, t, op, env)
    }

    /// Queues the micro-ops implementing `op` for thread `t`.
    /// Translates one thread operation into a leading segment (returned
    /// for the caller to run immediately) plus follow-up steps queued on
    /// the thread's continuation. Kernel-call ops queue everything and
    /// return `None` (the syscall surfaces via the poll loop).
    fn interpret(&mut self, slot: usize, t: UtId, op: Op, env: &mut RtEnv<'_>) -> Option<VpSeg> {
        let cc = self.costs(env.cost);
        let fork_prio = match &op {
            Op::ForkPrio(_, prio) => Some(*prio),
            _ => None,
        };
        match op {
            Op::Compute(d) => {
                let critical = self.tcbs.hot[t.index()].locks_held > 0;
                let s = seg(d, WorkKind::UserWork, cookie::Tag::User, Some(t), critical);
                self.tcbs.cold[t.index()]
                    .cont
                    .push_back(RtMicro::Step(Step::OpDone(OpResult::Done)));
                return Some(s);
            }
            Op::Acquire(l) => {
                let d = cc.acquire;
                let s = seg(
                    d,
                    WorkKind::RuntimeOverhead,
                    cookie::Tag::RuntimeOp,
                    Some(t),
                    true,
                );
                let q = &mut self.tcbs.cold[t.index()].cont;
                q.push_back(RtMicro::Step(Step::FinishAcquire(l)));
                return Some(s);
            }
            Op::Release(l) => {
                let d = cc.release;
                let s = seg(
                    d,
                    WorkKind::RuntimeOverhead,
                    cookie::Tag::RuntimeOp,
                    Some(t),
                    true,
                );
                let q = &mut self.tcbs.cold[t.index()].cont;
                q.push_back(RtMicro::Step(Step::FinishRelease(l)));
                return Some(s);
            }
            Op::Wait { cv, lock } => {
                let d = cc.cv_op;
                let s = seg(
                    d,
                    WorkKind::RuntimeOverhead,
                    cookie::Tag::RuntimeOp,
                    Some(t),
                    true,
                );
                let q = &mut self.tcbs.cold[t.index()].cont;
                q.push_back(RtMicro::Step(Step::FinishCvWait { cv, lock }));
                return Some(s);
            }
            Op::Signal(cv) => {
                let d = cc.cv_op;
                let s = seg(
                    d,
                    WorkKind::RuntimeOverhead,
                    cookie::Tag::RuntimeOp,
                    Some(t),
                    true,
                );
                let q = &mut self.tcbs.cold[t.index()].cont;
                q.push_back(RtMicro::Step(Step::FinishCvSignal(cv)));
                q.push_back(RtMicro::Step(Step::OpDone(OpResult::Done)));
                return Some(s);
            }
            Op::Broadcast(cv) => {
                let d = cc.cv_op;
                let s = seg(
                    d,
                    WorkKind::RuntimeOverhead,
                    cookie::Tag::RuntimeOp,
                    Some(t),
                    true,
                );
                let q = &mut self.tcbs.cold[t.index()].cont;
                q.push_back(RtMicro::Step(Step::FinishCvBroadcast(cv)));
                q.push_back(RtMicro::Step(Step::OpDone(OpResult::Done)));
                return Some(s);
            }
            Op::Fork(body) | Op::ForkPrio(body, _) => {
                self.stats.forks.inc();
                let span = body.span_id();
                let child = self.alloc_tcb(slot, body);
                if let Some(prio) = fork_prio {
                    self.tcbs.hot[child.index()].prio = prio;
                }
                if let Some(req) = span {
                    env.trace.event(env.now, || sa_sim::TraceEvent::SpanBind {
                        req,
                        space: env.space,
                        thread: child.0,
                    });
                }
                // TCB free list + init + ready-list push: two critical
                // sections plus the scheduler-activation busy accounting.
                let d = cc.fork;
                let s = seg(
                    d,
                    WorkKind::RuntimeOverhead,
                    cookie::Tag::RuntimeOp,
                    Some(t),
                    true,
                );
                let q = &mut self.tcbs.cold[t.index()].cont;
                q.push_back(RtMicro::Step(Step::FinishFork(child)));
                q.push_back(RtMicro::Step(Step::OpDone(OpResult::Forked(
                    child.as_ref(),
                ))));
                return Some(s);
            }
            Op::Join(r) => {
                let target = UtId::from_ref(r);
                let d = cc.join;
                let s = seg(
                    d,
                    WorkKind::RuntimeOverhead,
                    cookie::Tag::RuntimeOp,
                    Some(t),
                    true,
                );
                let q = &mut self.tcbs.cold[t.index()].cont;
                q.push_back(RtMicro::Step(Step::FinishJoin(target)));
                return Some(s);
            }
            Op::Exit => {
                self.stats.exits.inc();
                let d = cc.exit;
                let s = seg(
                    d,
                    WorkKind::RuntimeOverhead,
                    cookie::Tag::RuntimeOp,
                    Some(t),
                    true,
                );
                let q = &mut self.tcbs.cold[t.index()].cont;
                q.push_back(RtMicro::Step(Step::FinishExit));
                return Some(s);
            }
            Op::Yield => {
                let d = cc.enqueue;
                let s = seg(
                    d,
                    WorkKind::RuntimeOverhead,
                    cookie::Tag::RuntimeOp,
                    Some(t),
                    true,
                );
                let q = &mut self.tcbs.cold[t.index()].cont;
                q.push_back(RtMicro::Step(Step::FinishYield));
                return Some(s);
            }
            Op::Io(dur) => {
                self.queue_thread_call(t, Syscall::Io { dur }, env);
            }
            Op::MemRead(page) => {
                self.queue_thread_call(t, Syscall::MemRead { page }, env);
            }
            Op::KernelSignal(chan) => {
                self.queue_thread_call(t, Syscall::KernelSignal { chan }, env);
            }
            Op::KernelWait(chan) => {
                self.queue_thread_call(t, Syscall::KernelWait { chan }, env);
            }
        }
        None
    }

    /// Queues a kernel call on behalf of the current thread.
    fn queue_thread_call(&mut self, t: UtId, call: Syscall, env: &mut RtEnv<'_>) {
        let acct = self.costs(env.cost).acct;
        let q = &mut self.tcbs.cold[t.index()].cont;
        if !acct.is_zero() {
            q.push_back(RtMicro::Seg(seg(
                acct,
                WorkKind::RuntimeOverhead,
                cookie::Tag::RuntimeOp,
                Some(t),
                false,
            )));
        }
        q.push_back(RtMicro::Call(call));
    }

    /// Removes leftover spin segments/steps from the front of a thread's
    /// continuation.
    fn clear_spin_micros(&mut self, t: UtId) {
        loop {
            match self.tcbs.cold[t.index()].cont.front() {
                Some(RtMicro::Seg(s)) if matches!(s.kind, WorkKind::SpinWait) => {
                    self.tcbs.cold[t.index()].cont.pop_front();
                }
                Some(RtMicro::SpinFor(_)) | Some(RtMicro::Step(Step::SpinExpired(_))) => {
                    self.tcbs.cold[t.index()].cont.pop_front();
                }
                _ => break,
            }
        }
    }

    // ---- Steps ---------------------------------------------------------

    /// Applies one step; may push further micro-work.
    fn apply_step(&mut self, slot: usize, st: Step, env: &mut RtEnv<'_>) {
        match st {
            Step::FinishDispatch(t) => {
                self.stats.dispatches.inc();
                self.tcbs.hot[t.index()].needs_resume_check = false;
                self.slots[slot].hysteresis_done = false;
                self.slots[slot].idle_hinted = false;
                if self.slots[slot].current.is_some() {
                    // A migrated dispatch raced with this slot's own; keep
                    // the incumbent and requeue the newcomer.
                    self.ready_thread(slot, t, env);
                } else {
                    if let Some(since) = self.tcbs.hot[t.index()].ready_since.take() {
                        self.stats.ready_wait.record(env.now.since(since));
                    }
                    self.slots[slot].current = Some(t);
                    self.tcbs.hot[t.index()].state = UtState::Running;
                }
            }
            Step::OpDone(r) => {
                let t = self.slots[slot].current.expect("OpDone without thread");
                self.tcbs.cold[t.index()].next_result = r;
            }
            Step::FinishAcquire(l) => self.finish_acquire(slot, l, env),
            Step::FinishRelease(l) => self.finish_release(slot, l, env),
            Step::FinishCvWait { cv, lock } => self.finish_cv_wait(slot, cv, lock, env),
            Step::FinishCvSignal(cv) => self.finish_cv_signal(slot, cv, env),
            Step::FinishCvBroadcast(cv) => self.finish_cv_broadcast(slot, cv, env),
            Step::FinishFork(child) => {
                let t = self.slots[slot].current.expect("fork without thread");
                debug_assert_ne!(child, t);
                self.live += 1;
                self.busy += 1;
                self.ready_thread(slot, child, env);
                self.note_busy_changed();
            }
            Step::FinishJoin(target) => self.finish_join(slot, target),
            Step::FinishYield => {
                let t = self.slots[slot]
                    .current
                    .take()
                    .expect("yield without thread");
                // A yielding thread goes to the *cold* end of the ready
                // queue so every other runnable thread goes first.
                self.tcbs.hot[t.index()].state = UtState::Ready;
                self.tcbs.hot[t.index()].ready_since = Some(env.now);
                self.ready.push_cold(slot, t);
                self.kick_an_idler(env);
            }
            Step::FinishExit => self.finish_exit(slot, env),
            Step::SpinExpired(l) => self.spin_expired(slot, l),
            Step::StartRecovery(t) => {
                self.stats.recoveries.inc();
                // A dispatch migrated from the preempted processor may have
                // loaded a thread already; the critical-section recovery
                // takes priority, so put that thread back on the ready list.
                if let Some(cur) = self.slots[slot].current.take() {
                    debug_assert_ne!(cur, t, "recovering the loaded thread");
                    self.ready_thread(slot, cur, env);
                }
                self.slots[slot].recovering = Some(t);
                self.slots[slot].recovering_since = Some(env.now);
                self.slots[slot].current = Some(t);
                self.tcbs.hot[t.index()].state = UtState::Running;
            }
            Step::EndRecovery => {
                let Some(t) = self.slots[slot].recovering.take() else {
                    return; // recovery superseded by a second preemption
                };
                if let Some(since) = self.slots[slot].recovering_since.take() {
                    self.stats.recovery_time.record(env.now.since(since));
                }
                debug_assert_eq!(self.slots[slot].current, Some(t));
                self.slots[slot].current = None;
                self.ready_thread(slot, t, env);
            }
            Step::ReadyThread(t) => {
                self.ready_thread(slot, t, env);
            }
        }
    }

    fn finish_acquire(&mut self, slot: usize, l: LockId, env: &mut RtEnv<'_>) {
        let _ = env; // the fast path makes no kernel requests
        let t = self.slots[slot].current.expect("acquire without thread");
        let lock = Self::lock_slot(&mut self.locks, l);
        match lock.holder {
            None => {
                lock.holder = Some(t);
                self.stats.lock_fast.inc();
                self.tcbs.hot[t.index()].locks_held += 1;
                self.tcbs.hot[t.index()].spinning_on = None;
                self.tcbs.hot[t.index()].state = UtState::Running;
                self.tcbs.cold[t.index()]
                    .cont
                    .push_front(RtMicro::Step(Step::OpDone(OpResult::Done)));
            }
            Some(h) if h == t => {
                // Handed off to us while we were spinning or blocked.
                self.tcbs.hot[t.index()].locks_held += 1;
                self.tcbs.hot[t.index()].spinning_on = None;
                self.tcbs.hot[t.index()].state = UtState::Running;
                self.tcbs.cold[t.index()]
                    .cont
                    .push_front(RtMicro::Step(Step::OpDone(OpResult::Done)));
            }
            Some(_) => {
                self.stats.lock_contended.inc();
                match self.cfg.lock_policy {
                    SpinPolicy::SpinForever => {
                        lock.spinners.push_back((t, slot));
                        self.tcbs.hot[t.index()].state = UtState::Spinning;
                        self.tcbs.hot[t.index()].spinning_on = Some(l);
                        self.tcbs.cold[t.index()]
                            .cont
                            .push_front(RtMicro::SpinFor(SpinCtx::Lock { t, lock: l }));
                    }
                    SpinPolicy::SpinThenBlock { spin } => {
                        lock.spinners.push_back((t, slot));
                        self.tcbs.hot[t.index()].state = UtState::Spinning;
                        self.tcbs.hot[t.index()].spinning_on = Some(l);
                        self.slots[slot].spin = Some(SpinCtx::Lock { t, lock: l });
                        let s = seg(
                            spin,
                            WorkKind::SpinWait,
                            cookie::Tag::SpinLock,
                            Some(t),
                            false,
                        );
                        let q = &mut self.tcbs.cold[t.index()].cont;
                        q.push_front(RtMicro::Step(Step::SpinExpired(l)));
                        q.push_front(RtMicro::Seg(s));
                    }
                    SpinPolicy::BlockImmediately => {
                        self.block_on_lock(slot, t, l);
                    }
                }
            }
        }
    }

    /// The bounded spin ran out: block at user level.
    fn spin_expired(&mut self, slot: usize, l: LockId) {
        self.slots[slot].spin = None;
        let t = self.slots[slot].current.expect("spin without thread");
        self.tcbs.hot[t.index()].spinning_on = None;
        let lock = Self::lock_slot(&mut self.locks, l);
        if lock.holder == Some(t) {
            // Granted at the last moment; take it.
            self.tcbs.hot[t.index()].locks_held += 1;
            self.tcbs.hot[t.index()].state = UtState::Running;
            self.tcbs.cold[t.index()]
                .cont
                .push_front(RtMicro::Step(Step::OpDone(OpResult::Done)));
            return;
        }
        lock.remove_spinner(t);
        self.stats.spin_blocks.inc();
        self.block_on_lock(slot, t, l);
    }

    fn block_on_lock(&mut self, slot: usize, t: UtId, l: LockId) {
        Self::lock_slot(&mut self.locks, l).waiters.push_back(t);
        self.tcbs.hot[t.index()].state = UtState::BlockedLock(l);
        self.slots[slot].current = None;
        self.busy -= 1;
    }

    fn finish_release(&mut self, slot: usize, l: LockId, env: &mut RtEnv<'_>) {
        let t = self.slots[slot].current.expect("release without thread");
        {
            let held = &mut self.tcbs.hot[t.index()].locks_held;
            debug_assert!(*held > 0, "release while holding no locks");
            *held = held.saturating_sub(1);
        }
        let lock = self.lock_get_mut(l).expect("release of unknown lock");
        debug_assert_eq!(lock.holder, Some(t), "release by non-holder");
        match lock.hand_off() {
            HandOff::None => {}
            HandOff::Spinner { t: w, slot: wslot } => {
                // The spinner's next test-and-set sees the lock is its own.
                if self.slots[wslot].current == Some(w)
                    && self.slots[wslot].spin == Some(SpinCtx::Lock { t: w, lock: l })
                {
                    if let Some(vp) = self.slots[wslot].active_vp {
                        env.kick(vp);
                    }
                }
                // Otherwise the spinner was preempted; it re-checks when
                // it is resumed and finds itself the holder.
            }
            HandOff::WakeRetry(w) => {
                self.busy += 1;
                self.tcbs.cold[w.index()]
                    .cont
                    .push_front(RtMicro::Step(Step::FinishAcquire(l)));
                self.ready_thread(slot, w, env);
                self.note_busy_changed();
            }
        }
        self.tcbs.cold[t.index()]
            .cont
            .push_front(RtMicro::Step(Step::OpDone(OpResult::Done)));
    }

    fn finish_cv_wait(&mut self, slot: usize, cv: CvId, lock: LockId, env: &mut RtEnv<'_>) {
        let t = self.slots[slot].current.expect("wait without thread");
        let c = Self::cv_slot(&mut self.cvs, cv);
        if c.banked > 0 {
            // Equivalent to an immediate (spurious) wakeup; the lock is
            // kept. Mesa-style users re-check their predicate.
            c.banked -= 1;
            self.tcbs.cold[t.index()]
                .cont
                .push_front(RtMicro::Step(Step::OpDone(OpResult::Done)));
            return;
        }
        c.waiters.push_back((t, lock));
        self.tcbs.hot[t.index()].state = UtState::BlockedCv(cv);
        self.slots[slot].current = None;
        self.busy -= 1;
        if lock != NO_LOCK {
            // Atomically release the mutex.
            self.release_for_wait(slot, t, lock, env);
        }
    }

    /// Lock release performed inside a cv wait (the waiter is already
    /// blocked, so no OpDone is queued for it here).
    fn release_for_wait(&mut self, slot: usize, t: UtId, l: LockId, env: &mut RtEnv<'_>) {
        {
            let held = &mut self.tcbs.hot[t.index()].locks_held;
            debug_assert!(*held > 0, "cv wait without holding the lock");
            *held -= 1;
        }
        let lock = self.lock_get_mut(l).expect("wait with unknown lock");
        debug_assert_eq!(lock.holder, Some(t));
        match lock.hand_off() {
            HandOff::None => {}
            HandOff::Spinner { t: w, slot: wslot } => {
                if self.slots[wslot].current == Some(w)
                    && self.slots[wslot].spin == Some(SpinCtx::Lock { t: w, lock: l })
                {
                    if let Some(vp) = self.slots[wslot].active_vp {
                        env.kick(vp);
                    }
                }
            }
            HandOff::WakeRetry(w) => {
                self.busy += 1;
                self.tcbs.cold[w.index()]
                    .cont
                    .push_front(RtMicro::Step(Step::FinishAcquire(l)));
                self.ready_thread(slot, w, env);
                self.note_busy_changed();
            }
        }
    }

    fn finish_cv_signal(&mut self, slot: usize, cv: CvId, env: &mut RtEnv<'_>) {
        let c = Self::cv_slot(&mut self.cvs, cv);
        match c.waiters.pop_front() {
            None => c.banked += 1,
            Some((w, lock)) => self.wake_cv_waiter(slot, w, lock, env),
        }
    }

    fn finish_cv_broadcast(&mut self, slot: usize, cv: CvId, env: &mut RtEnv<'_>) {
        // Staged through a persistent scratch buffer: `wake_cv_waiter`
        // needs `&mut self`, so the waiter list cannot stay borrowed while
        // waking, and a fresh `Vec` per broadcast would put an allocation
        // on the signal path.
        debug_assert!(self.scratch_cv.is_empty());
        let mut waiters = std::mem::take(&mut self.scratch_cv);
        waiters.extend(Self::cv_slot(&mut self.cvs, cv).waiters.drain(..));
        for (w, lock) in waiters.drain(..) {
            self.wake_cv_waiter(slot, w, lock, env);
        }
        self.scratch_cv = waiters;
    }

    /// A signalled waiter either becomes ready (re-acquiring a free mutex
    /// on the way) or moves onto the mutex's wait queue.
    fn wake_cv_waiter(&mut self, slot: usize, w: UtId, lock: LockId, env: &mut RtEnv<'_>) {
        if lock != NO_LOCK {
            let l = Self::lock_slot(&mut self.locks, lock);
            if l.holder.is_some() {
                l.waiters.push_back(w);
                self.tcbs.hot[w.index()].state = UtState::BlockedLock(lock);
                return;
            }
            l.holder = Some(w);
            self.tcbs.hot[w.index()].locks_held += 1;
        }
        self.tcbs.hot[w.index()].needs_resume_check = true;
        self.busy += 1;
        self.tcbs.cold[w.index()]
            .cont
            .push_front(RtMicro::Step(Step::OpDone(OpResult::Done)));
        self.ready_thread(slot, w, env);
        self.note_busy_changed();
    }

    fn finish_join(&mut self, slot: usize, target: UtId) {
        let t = self.slots[slot].current.expect("join without thread");
        if self.tcbs.hot[target.index()].exited {
            if self.tcbs.hot[target.index()].state == UtState::Exited {
                // Reap: the control block can be reused now.
                self.tcbs.hot[target.index()].state = UtState::Free;
                self.tcbs.cold[target.index()].body = None;
                self.slots[slot].free_tcbs.push(target);
            }
            self.tcbs.cold[t.index()]
                .cont
                .push_front(RtMicro::Step(Step::OpDone(OpResult::Done)));
        } else {
            self.tcbs.cold[target.index()].joiners.push(t);
            self.tcbs.hot[t.index()].state = UtState::BlockedJoin(target);
            self.slots[slot].current = None;
            self.busy -= 1;
        }
    }

    fn finish_exit(&mut self, slot: usize, env: &mut RtEnv<'_>) {
        let t = self.slots[slot]
            .current
            .take()
            .expect("exit without thread");
        debug_assert_eq!(
            self.tcbs.hot[t.index()].locks_held,
            0,
            "thread exited holding a lock"
        );
        self.tcbs.hot[t.index()].exited = true;
        self.tcbs.cold[t.index()].body = None;
        self.live -= 1;
        self.busy -= 1;
        let joiners = std::mem::take(&mut self.tcbs.cold[t.index()].joiners);
        if joiners.is_empty() {
            self.tcbs.hot[t.index()].state = UtState::Exited;
        } else {
            // Joined already: reap immediately.
            self.tcbs.hot[t.index()].state = UtState::Free;
            self.slots[slot].free_tcbs.push(t);
            for j in joiners {
                self.busy += 1;
                self.tcbs.cold[j.index()]
                    .cont
                    .push_front(RtMicro::Step(Step::OpDone(OpResult::Done)));
                self.ready_thread(slot, j, env);
            }
            self.note_busy_changed();
        }
    }

    // ---- Upcall event processing (scheduler activations) ---------------

    /// Records that the notification numbered `seq` has been processed,
    /// advancing the contiguous floor reported to the kernel at the next
    /// bulk recycle (see `notify_floor`).
    fn note_seq(&mut self, seq: u64) {
        if seq == self.notify_floor + 1 {
            self.notify_floor = seq;
            while self.notify_seen.remove(&(self.notify_floor + 1)) {
                self.notify_floor += 1;
            }
        } else {
            debug_assert!(seq > self.notify_floor, "notification seq {seq} replayed");
            self.notify_seen.insert(seq);
        }
    }

    /// Processes one Table 2 event, pushing any follow-up micro-work onto
    /// the slot's continuation.
    fn process_task(&mut self, slot: usize, ev: UpcallEvent, env: &mut RtEnv<'_>) {
        let c = env.cost;
        if let Some(seq) = ev.seq() {
            self.note_seq(seq);
        }
        match ev {
            UpcallEvent::AddProcessor { .. } => {
                // The processor is the one we are running on; nothing to
                // record beyond resetting the want-more notification state.
                self.notified_want_more = false;
                self.note_busy_changed();
            }
            UpcallEvent::Blocked { vp, seq } => {
                let t = self.deactivate_slot(vp, slot);
                if let Some(t) = t {
                    debug_assert_ne!(self.tcbs.hot[t.index()].state, UtState::Free);
                    if self.early_unblocks.remove(&seq) {
                        // The unblock notification overtook this event; the
                        // thread is already runnable again.
                        self.tcbs.cold[t.index()]
                            .cont
                            .push_front(RtMicro::Step(Step::OpDone(OpResult::Done)));
                        let d = self.costs(c).enqueue;
                        let sgm = seg(d, WorkKind::UpcallWork, cookie::Tag::Upcall, None, true);
                        let q = &mut self.slots[slot].cont;
                        q.push_back(RtMicro::Seg(sgm));
                        q.push_back(RtMicro::Step(Step::ReadyThread(t)));
                    } else {
                        self.tcbs.hot[t.index()].state = UtState::BlockedKernel;
                        self.busy -= 1;
                        let prev = self.blocked_threads.insert(seq, t);
                        debug_assert!(prev.is_none(), "duplicate block episode {seq}");
                    }
                }
            }
            UpcallEvent::Unblocked {
                vp: _,
                blocked_seq,
                seq: _,
                outcome: _,
                saved: _,
            } => {
                self.stats.unblocks.inc();
                self.discard_backlog += 1;
                self.kernel_attention = true;
                let Some(t) = self.blocked_threads.remove(&blocked_seq) else {
                    // Arrived before the matching Blocked event (§3.1
                    // migration reordering); remember the episode.
                    self.early_unblocks.insert(blocked_seq);
                    return;
                };
                debug_assert_eq!(self.tcbs.hot[t.index()].state, UtState::BlockedKernel);
                self.busy += 1;
                self.tcbs.cold[t.index()]
                    .cont
                    .push_front(RtMicro::Step(Step::OpDone(OpResult::Done)));
                let d = self.costs(c).enqueue_acct;
                let s = seg(d, WorkKind::UpcallWork, cookie::Tag::Upcall, None, true);
                let q = &mut self.slots[slot].cont;
                q.push_back(RtMicro::Seg(s));
                q.push_back(RtMicro::Step(Step::ReadyThread(t)));
                self.note_busy_changed();
            }
            UpcallEvent::Preempted { vp, saved, .. } => {
                self.stats.preemptions_seen.inc();
                self.discard_backlog += 1;
                self.kernel_attention = true;
                let t = self.deactivate_slot(vp, slot);
                let Some(t) = t else {
                    // The recycle floor guarantees the binding for `vp` is
                    // live (a stale one cannot survive a reuse), so an
                    // unbound vp really was in the idle loop and carries no
                    // thread state to recover.
                    debug_assert!(
                        saved.remaining.is_zero() || !matches!(saved.kind, WorkKind::UserWork),
                        "preempted idle vp {vp} carried a user remainder"
                    );
                    // "If a preempted processor was in the idle loop, no
                    // action is necessary." (§3.1)
                    return;
                };
                self.handle_preempted_thread(slot, t, saved, env);
            }
        }
    }

    /// Returns a preempted thread to the ready list — after continuing it
    /// through its critical section if necessary (§3.3).
    fn handle_preempted_thread(
        &mut self,
        slot: usize,
        t: UtId,
        saved: SavedContext,
        env: &mut RtEnv<'_>,
    ) {
        let c = env.cost;
        match self.tcbs.hot[t.index()].state {
            UtState::Spinning => {
                // Drop the spin; the thread re-attempts the acquire when
                // it is resumed (a spinner's first action is always to
                // re-read the lock word).
                let lock = self.tcbs.hot[t.index()]
                    .spinning_on
                    .take()
                    .expect("spinning thread without a target lock");
                if let Some(l) = self.lock_get_mut(lock) {
                    l.remove_spinner(t);
                }
                self.clear_spin_micros(t);
                self.tcbs.cold[t.index()]
                    .cont
                    .push_front(RtMicro::Step(Step::FinishAcquire(lock)));
                self.tcbs.hot[t.index()].state = UtState::Preempted;
                self.tcbs.hot[t.index()].needs_resume_check = true;
            }
            UtState::Running => {
                self.tcbs.hot[t.index()].state = UtState::Preempted;
                self.tcbs.hot[t.index()].needs_resume_check = true;
                // The kernel-saved register state: the unfinished segment.
                let (_, owner, _crit) = cookie::unpack(saved.cookie);
                debug_assert!(
                    owner == Some(t)
                        || saved.remaining.is_zero()
                        || !matches!(saved.kind, WorkKind::UserWork),
                    "preempted {t}'s saved user remainder belongs to {owner:?}"
                );
                if owner == Some(t) && !saved.remaining.is_zero() {
                    let rem = seg(
                        saved.remaining,
                        saved.kind,
                        cookie::Tag::User,
                        Some(t),
                        cookie::unpack(saved.cookie).2,
                    );
                    self.tcbs.cold[t.index()].cont.push_front(RtMicro::Seg(rem));
                }
            }
            other => {
                debug_assert!(false, "preempted thread {t} in unexpected state {other:?}");
            }
        }
        let in_critical = cookie::unpack(saved.cookie).2 || self.tcbs.hot[t.index()].locks_held > 0;
        if in_critical && self.cfg.critical != CriticalSectionMode::NoRecovery {
            // Continue the thread via a user-level context switch until it
            // leaves its critical section; it then relinquishes control
            // back to this upcall (§3.3).
            let d = c.ut_ctx_switch;
            let s = seg(d, WorkKind::UpcallWork, cookie::Tag::Upcall, None, false);
            let q = &mut self.slots[slot].cont;
            q.push_back(RtMicro::Seg(s));
            q.push_back(RtMicro::Step(Step::StartRecovery(t)));
        } else {
            let d = self.costs(c).enqueue;
            let s = seg(d, WorkKind::UpcallWork, cookie::Tag::Upcall, None, true);
            let q = &mut self.slots[slot].cont;
            q.push_back(RtMicro::Seg(s));
            q.push_back(RtMicro::Step(Step::ReadyThread(t)));
        }
    }

    // ---- The fill decision --------------------------------------------

    /// Decides what this processor does next when all queued micro-work is
    /// Services pending kernel notifications (Table 3 / recycling / §3.1
    /// priority preemption), guarded by `kernel_attention` so the hot
    /// path pays one flag check. Clears the flag once nothing is pending.
    #[cold]
    fn service_kernel_attention(&mut self, slot: usize) -> Option<VpAction> {
        if self.is_sa() {
            if let Some(vp) = self.preempt_request.take() {
                // Don't interrupt ourselves; the high-priority thread will
                // be picked by this slot's own next dispatch.
                if self.slots[slot].active_vp != Some(vp) {
                    self.slots[slot].awaiting = Some(Awaiting::Hint);
                    return Some(VpAction::Syscall {
                        call: Syscall::PreemptVp { vp },
                    });
                }
            }
            if self.hint_due {
                self.hint_due = false;
                self.notified_want_more = true;
                self.stats.hints.inc();
                self.slots[slot].awaiting = Some(Awaiting::Hint);
                let total = self.busy.min(self.cfg.max_processors);
                return Some(VpAction::Syscall {
                    call: Syscall::SetDesiredProcessors { total },
                });
            }
            if self.discard_backlog >= self.cfg.recycle_batch {
                self.discard_backlog = 0;
                self.stats.recycles.inc();
                self.slots[slot].awaiting = Some(Awaiting::Hint);
                return Some(VpAction::Syscall {
                    call: Syscall::RecycleActivations {
                        upto: self.notify_floor,
                    },
                });
            }
        }
        self.kernel_attention = false;
        None
    }

    /// exhausted. Pushes new micro-work and returns `None`, or returns a
    /// terminal action.
    fn fill(&mut self, slot: usize, env: &mut RtEnv<'_>) -> Option<VpAction> {
        let c = env.cost;
        // 0. Recovery in progress: drive the recovered thread.
        if let Some(r) = self.slots[slot].recovering {
            if self.slots[slot].current != Some(r) {
                // The recovered thread exited or blocked at user level
                // while being continued; switch straight back to the
                // interrupted upcall processing.
                self.slots[slot].recovering = None;
                if let Some(since) = self.slots[slot].recovering_since.take() {
                    self.stats.recovery_time.record(env.now.since(since));
                }
                let s = seg(
                    c.ut_ctx_switch,
                    WorkKind::UpcallWork,
                    cookie::Tag::Upcall,
                    None,
                    false,
                );
                return Some(VpAction::Run(s));
            }
            if self.tcbs.hot[r.index()].locks_held == 0 && self.tcbs.cold[r.index()].cont.is_empty()
            {
                let d = c.ut_ctx_switch;
                let s = seg(d, WorkKind::UpcallWork, cookie::Tag::Upcall, None, false);
                self.slots[slot]
                    .cont
                    .push_back(RtMicro::Step(Step::EndRecovery));
                return Some(VpAction::Run(s));
            }
            return self.step_body(slot, r, env).map(VpAction::Run);
        }
        // 1. Unprocessed upcall events.
        if let Some(ev) = self.slots[slot].tasks.pop_front() {
            self.process_task(slot, ev, env);
            return None;
        }
        // 2. Pending kernel notifications (Table 3 / recycling / §3.1
        //    priority preemption).
        if self.kernel_attention {
            if let Some(action) = self.service_kernel_attention(slot) {
                return Some(action);
            }
        }
        // 3. A loaded thread: run its next operation.
        if let Some(t) = self.slots[slot].current {
            return self.step_body(slot, t, env).map(VpAction::Run);
        }
        // 4. Dispatch: ask the ready policy for a thread (§2.1 — the
        //    discipline is the application's choice). The policy reports
        //    how it found the thread; the mechanism charges the costs.
        let pick = if self.cfg.priority_scheduling {
            self.ready
                .pop_best(slot, &|t| self.tcbs.hot[t.index()].prio)
        } else {
            self.ready.pop(slot)
        };
        if let Some(pick) = pick {
            let t = pick.t;
            if pick.stolen {
                self.stats.steals.inc();
            }
            let d = c.ut_scan_step.saturating_mul(pick.scan_steps)
                + self.costs(c).dispatch
                + self.resume_check_cost(t, c);
            let s = seg(
                d,
                WorkKind::RuntimeOverhead,
                cookie::Tag::Dispatch,
                Some(t),
                true,
            );
            self.slots[slot]
                .cont
                .push_back(RtMicro::Step(Step::FinishDispatch(t)));
            return Some(VpAction::Run(s));
        }
        // 5. Nothing runnable.
        if self.live == 0 {
            return Some(VpAction::GiveUp);
        }
        if self.is_sa() {
            if !self.slots[slot].hysteresis_done {
                // Spin briefly before offering the processor back, to avoid
                // re-allocation churn (§4.2).
                self.slots[slot].hysteresis_done = true;
                self.slots[slot].spin = Some(SpinCtx::Idle);
                let s = seg(
                    self.cfg.idle_hysteresis,
                    WorkKind::IdleSpin,
                    cookie::Tag::Idle,
                    None,
                    false,
                );
                return Some(VpAction::Run(s));
            }
            if !self.slots[slot].idle_hinted {
                self.slots[slot].idle_hinted = true;
                self.stats.hints.inc();
                self.slots[slot].awaiting = Some(Awaiting::Hint);
                return Some(VpAction::Syscall {
                    call: Syscall::ProcessorIdle,
                });
            }
        }
        // Idle loop: burn the processor until work appears or the kernel
        // takes it (on kernel threads this burning is invisible to the
        // kernel — the §2.2 problem).
        self.slots[slot].spin = Some(SpinCtx::Idle);
        let space = env.space;
        let vp = self.slots[slot].active_vp.map_or(0, |v| v.0);
        env.trace
            .event(env.now, || TraceEvent::SpinStart { space, vp });
        Some(VpAction::Spin {
            cookie: cookie::pack(cookie::Tag::Idle, None, false),
            kind: WorkKind::IdleSpin,
        })
    }
}

impl UserRuntime for FastThreads {
    fn kthread_vps(&self) -> Option<u32> {
        match self.cfg.substrate {
            Substrate::KernelThreads { vps } => Some(vps),
            Substrate::SchedulerActivations => None,
        }
    }

    fn set_main(&mut self, body: Box<dyn ThreadBody>) {
        debug_assert!(self.boot_thread.is_none(), "set_main called twice");
        let id = self.tcbs.push_free();
        self.tcbs.reinit(id, body);
        self.live = 1;
        self.busy = 1;
        self.boot_thread = Some(id);
    }

    fn deliver_upcall(&mut self, _env: &mut RtEnv<'_>, vp: VpId, events: &[UpcallEvent]) {
        self.stats.upcalls.inc();
        let slot = self.bind_slot(vp);
        self.slots[slot].tasks.extend(events.iter().copied());
    }

    fn poll(&mut self, env: &mut RtEnv<'_>, vp: VpId, reason: PollReason) -> VpAction {
        let slot = self.bind_slot(vp);
        self.ensure_booted(slot, env);
        match reason {
            PollReason::Fresh | PollReason::SegDone => {}
            PollReason::SyscallDone(_outcome) => match self.slots[slot].awaiting.take() {
                Some(Awaiting::ThreadCall(t)) => {
                    self.tcbs.cold[t.index()]
                        .cont
                        .push_front(RtMicro::Step(Step::OpDone(OpResult::Done)));
                }
                Some(Awaiting::Hint) | None => {}
            },
            PollReason::Kicked => {
                let ctx = self.slots[slot].spin.take();
                if ctx.is_some() {
                    let space = env.space;
                    env.trace
                        .event(env.now, || TraceEvent::SpinStop { space, vp: vp.0 });
                }
                match ctx {
                    Some(SpinCtx::Lock { t, lock }) => {
                        // Drop the pending spin remainder, if any, and
                        // re-run the acquire: the releaser made us holder.
                        self.clear_spin_micros(t);
                        let l = Self::lock_slot(&mut self.locks, lock);
                        l.remove_spinner(t);
                        self.tcbs.hot[t.index()].spinning_on = None;
                        self.tcbs.hot[t.index()].state = UtState::Running;
                        self.tcbs.cold[t.index()]
                            .cont
                            .push_front(RtMicro::Step(Step::FinishAcquire(lock)));
                    }
                    Some(SpinCtx::Idle) | None => {}
                }
            }
        }
        // Main execution loop: slot-level work first (upcall processing and
        // dispatch), then the loaded thread's continuation, else decide.
        let mut guard = 0u32;
        loop {
            guard += 1;
            assert!(guard < 100_000, "runtime livelock on slot {slot}");
            let micro = if let Some(m) = self.slots[slot].cont.pop_front() {
                Some(m)
            } else if let Some(t) = self.slots[slot].current {
                self.tcbs.cold[t.index()].cont.pop_front()
            } else {
                None
            };
            match micro {
                Some(RtMicro::Seg(s)) => return VpAction::Run(s),
                Some(RtMicro::Step(st)) => {
                    self.apply_step(slot, st, env);
                }
                Some(RtMicro::Call(call)) => {
                    let t = self.slots[slot].current;
                    if let Some(t) = t {
                        self.slots[slot].awaiting = Some(Awaiting::ThreadCall(t));
                    }
                    return VpAction::Syscall { call };
                }
                Some(RtMicro::SpinFor(ctx)) => {
                    self.slots[slot].spin = Some(ctx);
                    let kind = match ctx {
                        SpinCtx::Lock { .. } => WorkKind::SpinWait,
                        SpinCtx::Idle => WorkKind::IdleSpin,
                    };
                    let t = match ctx {
                        SpinCtx::Lock { t, .. } => Some(t),
                        SpinCtx::Idle => None,
                    };
                    let space = env.space;
                    env.trace
                        .event(env.now, || TraceEvent::SpinStart { space, vp: vp.0 });
                    return VpAction::Spin {
                        cookie: cookie::pack(cookie::Tag::SpinLock, t, false),
                        kind,
                    };
                }
                None => {
                    if let Some(action) = self.fill(slot, env) {
                        return action;
                    }
                }
            }
        }
    }

    fn quiescent(&self) -> bool {
        self.live == 0 && self.boot_thread.is_none()
    }

    fn desired_processors(&self) -> u32 {
        self.busy.min(self.cfg.max_processors)
    }

    fn ready_wait_ns(&self) -> u64 {
        self.stats.ready_wait.sum_ns() as u64
    }

    fn tcb_slab_stats(&self) -> Option<sa_kernel::upcall::TcbSlabStats> {
        Some(sa_kernel::upcall::TcbSlabStats {
            rows: self.tcb_rows(),
            hot_bytes: self.tcb_hot_bytes(),
            total_bytes: self.tcb_bytes(),
        })
    }

    fn debug_dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut by_state: std::collections::HashMap<String, u32> = Default::default();
        for t in self.tcbs.hot.iter() {
            *by_state.entry(format!("{:?}", t.state)).or_default() += 1;
        }
        let mut states: Vec<_> = by_state.into_iter().collect();
        states.sort();
        let _ = writeln!(out, "threads by state: {states:?}");
        let _ = writeln!(
            out,
            "busy={} live={} boot={:?} hint_due={} want_more={} backlog={}",
            self.busy,
            self.live,
            self.boot_thread,
            self.hint_due,
            self.notified_want_more,
            self.discard_backlog
        );
        for (l, lk) in self
            .locks
            .iter()
            .enumerate()
            .filter_map(|(i, l)| Some((LockId(i as u32), l.as_ref()?)))
        {
            let _ = writeln!(
                out,
                "lock {l}: holder={:?} (state {:?}) spinners={} waiters={}",
                lk.holder,
                lk.holder.map(|h| self.tcbs.hot[h.index()].state),
                lk.spinners.len(),
                lk.waiters.len()
            );
        }
        for (i, s) in self.slots.iter().enumerate() {
            let _ = writeln!(
                out,
                "slot {i}: vp={:?} current={:?} ready={} cont={} tasks={} spin={:?} recovering={:?} awaiting={:?}",
                s.active_vp, s.current, self.ready.len(i), s.cont.len(), s.tasks.len(),
                s.spin, s.recovering, s.awaiting
            );
        }
        let _ = writeln!(out, "ready totals: {}", self.ready.total());
        let _ = writeln!(out, "blocked_threads: {:?}", self.blocked_threads);
        let _ = writeln!(out, "early_unblocks: {:?}", self.early_unblocks);
        for i in 0..self.tcbs.len() {
            let t = &self.tcbs.hot[i];
            if matches!(
                t.state,
                UtState::BlockedKernel | UtState::Spinning | UtState::Preempted | UtState::Running
            ) {
                let _ = writeln!(
                    out,
                    "  {}: {:?} cont={} locks={} spin_on={:?}",
                    UtId(i as u32),
                    t.state,
                    self.tcbs.cold[i].cont.len(),
                    t.locks_held,
                    t.spinning_on
                );
            }
        }
        out
    }

    fn stats_line(&self) -> String {
        let s = &self.stats;
        format!(
            "forks={} dispatches={} steals={} lock_fast={} lock_contended={} \
spin_blocks={} upcalls={} recoveries={} hints={} recycles={} unblocks={} preempts_seen={} \
ready_wait[{}] recovery_time[{}]",
            s.forks.get(),
            s.dispatches.get(),
            s.steals.get(),
            s.lock_fast.get(),
            s.lock_contended.get(),
            s.spin_blocks.get(),
            s.upcalls.get(),
            s.recoveries.get(),
            s.hints.get(),
            s.recycles.get(),
            s.unblocks.get(),
            s.preemptions_seen.get(),
            s.ready_wait.summary(),
            s.recovery_time.summary()
        )
    }
}
