//! User-level synchronization objects.
//!
//! These run entirely at user level — no kernel involvement on any path —
//! which is the heart of the paper's performance argument (§2.1). A
//! contended mutex spins briefly (the holder is usually running on another
//! processor) and then blocks at user level; condition variables follow the
//! same banked-signal convention as the kernel's (a waiter-less signal is
//! remembered, which Mesa-style users observe as a spurious wakeup).

use crate::types::UtId;
use sa_machine::ids::LockId;
use sa_sim::SimDuration;
use std::collections::VecDeque;

/// How a user-level mutex behaves under contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpinPolicy {
    /// Spin until the lock is granted (original FastThreads ready-list
    /// style; pathological under processor preemption, §3.3).
    SpinForever,
    /// Spin for a bounded time, then block at user level
    /// ([Karlin et al. 91]'s competitive spinning).
    SpinThenBlock {
        /// Spin budget before blocking.
        spin: SimDuration,
    },
    /// Block immediately if the lock is held.
    BlockImmediately,
}

impl Default for SpinPolicy {
    fn default() -> Self {
        SpinPolicy::SpinThenBlock {
            spin: SimDuration::from_micros(30),
        }
    }
}

/// A user-level mutex.
#[derive(Debug, Default)]
pub(crate) struct ULock {
    pub holder: Option<UtId>,
    /// Threads spinning for the lock, with the slot their VP occupies.
    pub spinners: VecDeque<(UtId, usize)>,
    /// Threads blocked (de-scheduled) waiting for the lock.
    pub waiters: VecDeque<UtId>,
}

impl ULock {
    /// On release: hands the lock to a spinner directly (it is burning a
    /// processor right now and will notice immediately), or wakes one
    /// blocked waiter to *retry* the acquire. Wake-and-retry rather than
    /// direct handoff: granting to a descheduled waiter would leave the
    /// lock logically held by a thread that is not running — a convoy.
    pub(crate) fn hand_off(&mut self) -> HandOff {
        if let Some((t, slot)) = self.spinners.pop_front() {
            self.holder = Some(t);
            HandOff::Spinner { t, slot }
        } else {
            self.holder = None;
            match self.waiters.pop_front() {
                Some(t) => HandOff::WakeRetry(t),
                None => HandOff::None,
            }
        }
    }

    /// Removes `t` from the spinner list if present (spin expiry,
    /// preemption, and kick paths). Unlike a `retain` over the whole list,
    /// this stops at the match; spinner lists are bounded by the processor
    /// count, and the common case is a hit at the front.
    pub(crate) fn remove_spinner(&mut self, t: UtId) -> bool {
        if let Some(pos) = self.spinners.iter().position(|&(x, _)| x == t) {
            self.spinners.remove(pos);
            true
        } else {
            false
        }
    }
}

/// Result of a lock release.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum HandOff {
    None,
    /// A spinner got the lock; kick its VP.
    Spinner {
        t: UtId,
        slot: usize,
    },
    /// A blocked waiter was woken and will retry the acquire.
    WakeRetry(UtId),
}

/// A user-level condition variable.
#[derive(Debug, Default)]
pub(crate) struct UCv {
    /// Waiting threads and the mutex each must re-acquire.
    pub waiters: VecDeque<(UtId, LockId)>,
    /// Signals that arrived with no waiter (spurious-wakeup semantics for
    /// lock-coupled users; event memory for `NO_LOCK` users).
    pub banked: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_off_prefers_spinner() {
        let mut l = ULock {
            holder: Some(UtId(0)),
            spinners: VecDeque::from([(UtId(1), 2)]),
            waiters: VecDeque::from([UtId(2)]),
        };
        assert_eq!(
            l.hand_off(),
            HandOff::Spinner {
                t: UtId(1),
                slot: 2
            }
        );
        assert_eq!(l.holder, Some(UtId(1)));
        // No spinner left: the waiter is woken to retry, lock left free.
        assert_eq!(l.hand_off(), HandOff::WakeRetry(UtId(2)));
        assert_eq!(l.holder, None);
        assert_eq!(l.hand_off(), HandOff::None);
    }

    #[test]
    fn default_policy_is_spin_then_block() {
        assert!(matches!(
            SpinPolicy::default(),
            SpinPolicy::SpinThenBlock { .. }
        ));
    }
}
