//! Core types of the user-level thread package.

use sa_kernel::upcall::{VpSeg, WorkKind};
use sa_kernel::Syscall;
use sa_machine::ids::{LockId, ThreadRef};
use sa_machine::program::{OpResult, ThreadBody};
use sa_sim::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A user-level thread id (index into the TCB table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UtId(pub u32);

impl UtId {
    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The handle exposed to thread bodies.
    pub fn as_ref(self) -> ThreadRef {
        ThreadRef(self.0 as u64)
    }

    /// Recovers the id from a body-visible handle.
    pub fn from_ref(r: ThreadRef) -> Self {
        UtId(r.0 as u32)
    }
}

impl core::fmt::Debug for UtId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ut{}", self.0)
    }
}

impl core::fmt::Display for UtId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ut{}", self.0)
    }
}

/// State of a user-level thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UtState {
    /// Control block on a free list.
    Free,
    /// On some ready list.
    Ready,
    /// Loaded on a virtual processor.
    Running,
    /// Spinning for a user lock (still occupying its VP).
    Spinning,
    /// Waiting on a user-level lock.
    BlockedLock(LockId),
    /// Waiting on a user-level condition variable.
    BlockedCv(sa_machine::ids::CvId),
    /// Waiting for another user thread to exit.
    BlockedJoin(UtId),
    /// Blocked inside the kernel (I/O, page fault, kernel channel).
    BlockedKernel,
    /// Stopped by a processor preemption; state saved, waiting to be
    /// returned to the ready list (or continued through its critical
    /// section first).
    Preempted,
    /// Exited; the control block lingers for joiners.
    Exited,
}

/// Deferred micro-work: a segment to charge, a step to apply, a kernel
/// call to make, or an open-ended spin to enter.
#[derive(Debug)]
pub(crate) enum RtMicro {
    /// Charge this segment (the kernel runs it on the VP).
    Seg(VpSeg),
    /// Apply this state transition.
    Step(Step),
    /// Trap into the kernel.
    Call(KernelCall),
    /// Spin until kicked or preempted.
    SpinFor(SpinCtx),
}

/// Instantaneous runtime state transitions, applied between segments.
///
/// Each one re-validates its preconditions when it runs, because other
/// virtual processors execute during the preceding segment (exactly the
/// interleaving a real test-and-set path faces).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Step {
    /// Finish the dispatch of a thread onto this VP.
    FinishDispatch(UtId),
    /// The previous op completed; record its result so the next body step
    /// sees it.
    OpDone(OpResult),
    /// Try to complete a user-lock acquire (fast path charged already).
    FinishAcquire(LockId),
    /// Complete a user-lock release (hand off to spinners/waiters).
    FinishRelease(LockId),
    /// Complete a cv wait: enqueue and block, or consume a banked signal.
    FinishCvWait {
        cv: sa_machine::ids::CvId,
        lock: LockId,
    },
    /// Complete a cv signal.
    FinishCvSignal(sa_machine::ids::CvId),
    /// Complete a cv broadcast.
    FinishCvBroadcast(sa_machine::ids::CvId),
    /// Complete a fork: TCB already allocated; enqueue the child.
    FinishFork(UtId),
    /// Complete a join: continue if the target exited, else block.
    FinishJoin(UtId),
    /// Complete a yield: requeue self.
    FinishYield,
    /// Complete thread exit: free TCB, wake joiners.
    FinishExit,
    /// The bounded spin expired without the lock being granted; block.
    SpinExpired(LockId),
    /// Begin continuing a preempted thread through its critical section.
    StartRecovery(UtId),
    /// The recovered thread finished its critical section; switch back to
    /// the interrupted context (§3.3).
    EndRecovery,
    /// Put a thread on this slot's ready list.
    ReadyThread(UtId),
}

/// What a VP is spinning on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SpinCtx {
    /// Thread `t` wants `lock`.
    Lock { t: UtId, lock: LockId },
    /// The idle loop.
    Idle,
}

/// What syscall outcome the VP expects next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Awaiting {
    /// The current thread's blocking/returning kernel call.
    ThreadCall(UtId),
    /// A processor-allocation hint or recycle call (no thread involved).
    Hint,
}

/// The hot half of a user-level thread control block: the words the
/// runtime's dispatch/ready path reads for *other* threads (state checks,
/// priority scans, critical-section recovery probes). ~40 bytes, so a
/// 4096-row page keeps preemption-victim scans and state transitions on
/// dense cache lines even with 10⁶ live threads.
#[derive(Debug, Clone, Copy)]
pub(crate) struct UtHot {
    pub state: UtState,
    /// Scheduling priority (higher wins; only consulted when
    /// `FtConfig::priority_scheduling` is on).
    pub prio: u8,
    /// Application-level locks held (critical-section recovery, §3.3).
    pub locks_held: u32,
    /// The lock this thread is currently spinning for, if any.
    pub spinning_on: Option<LockId>,
    /// The next dispatch must check for saved state to restore (set when
    /// the thread is woken from a condition wait or preemption).
    pub needs_resume_check: bool,
    pub exited: bool,
    /// When the thread last became ready (for the ready-wait histogram).
    pub ready_since: Option<SimTime>,
}

/// The cold half: the body box, saved continuation, and join bookkeeping
/// — touched only when this thread itself runs or exits.
pub(crate) struct UtCold {
    pub body: Option<Box<dyn ThreadBody>>,
    /// Result the next body step will observe.
    pub next_result: OpResult,
    /// Saved continuation: segments/steps still to run for the current op
    /// (includes the preemption-saved remainder at its front).
    pub cont: VecDeque<RtMicro>,
    /// Threads joined on this one.
    pub joiners: Vec<UtId>,
}

/// The TCB table: struct-of-arrays over paged slabs, indexed by dense
/// [`UtId`] row numbers. Growth allocates whole pages (never moving live
/// rows), and exited rows are recycled through the per-slot free lists,
/// so 10⁶-thread churn runs in bounded memory.
#[derive(Default)]
pub(crate) struct TcbStore {
    pub hot: sa_sim::PagedVec<UtHot, 4096>,
    pub cold: sa_sim::PagedVec<UtCold, 1024>,
}

impl TcbStore {
    pub(crate) fn len(&self) -> usize {
        self.hot.len()
    }

    /// Appends a fresh `Free` control block and returns its id.
    pub(crate) fn push_free(&mut self) -> UtId {
        let row = self.hot.push(UtHot {
            state: UtState::Free,
            prio: 1,
            locks_held: 0,
            spinning_on: None,
            needs_resume_check: false,
            exited: false,
            ready_since: None,
        });
        let cold_row = self.cold.push(UtCold {
            body: None,
            next_result: OpResult::Start,
            cont: VecDeque::new(),
            joiners: Vec::new(),
        });
        debug_assert_eq!(row, cold_row);
        UtId(row)
    }

    /// Re-initializes a free (new or recycled) control block for a thread.
    pub(crate) fn reinit(&mut self, id: UtId, body: Box<dyn ThreadBody>) {
        let h = &mut self.hot[id.index()];
        debug_assert_eq!(h.state, UtState::Free);
        h.state = UtState::Ready;
        h.prio = 1;
        h.locks_held = 0;
        h.spinning_on = None;
        h.needs_resume_check = false;
        h.exited = false;
        h.ready_since = None;
        let c = &mut self.cold[id.index()];
        c.body = Some(body);
        c.next_result = OpResult::Start;
        c.cont.clear();
        c.joiners.clear();
    }

    /// Resident bytes of the hot slab alone — the per-thread footprint
    /// the dispatch loop actually walks (`bytes_per_thread` bench).
    pub(crate) fn hot_bytes_resident(&self) -> usize {
        self.hot.bytes_resident()
    }

    /// Resident bytes of both slabs (excluding boxed bodies/continuations).
    pub(crate) fn bytes_resident(&self) -> usize {
        self.hot.bytes_resident() + self.cold.bytes_resident()
    }
}

/// Per-segment identification packed into the kernel-visible cookie.
///
/// Layout: bits 63..56 tag, bit 55 critical-section flag, bits 31..0 the
/// thread id plus one (zero meaning "no thread").
pub(crate) mod cookie {
    use super::UtId;

    /// What kind of runtime work a segment was.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Tag {
        /// Application computation.
        User = 1,
        /// Runtime bookkeeping on behalf of a thread.
        RuntimeOp = 2,
        /// Dispatch path (ready-list lock held).
        Dispatch = 3,
        /// Spinning for a lock.
        SpinLock = 4,
        /// The idle loop.
        Idle = 5,
        /// Upcall processing.
        Upcall = 6,
    }

    /// Packs a cookie.
    pub fn pack(tag: Tag, t: Option<UtId>, critical: bool) -> u64 {
        ((tag as u64) << 56) | ((critical as u64) << 55) | t.map(|t| t.0 as u64 + 1).unwrap_or(0)
    }

    /// Unpacks `(tag, thread, critical)`; unknown tags map to `User`.
    pub fn unpack(c: u64) -> (Tag, Option<UtId>, bool) {
        let tag = match c >> 56 {
            2 => Tag::RuntimeOp,
            3 => Tag::Dispatch,
            4 => Tag::SpinLock,
            5 => Tag::Idle,
            6 => Tag::Upcall,
            _ => Tag::User,
        };
        let critical = (c >> 55) & 1 == 1;
        let tl = c & 0xffff_ffff;
        let t = if tl == 0 {
            None
        } else {
            Some(UtId(tl as u32 - 1))
        };
        (tag, t, critical)
    }
}

/// A virtual-processor slot: the per-processor state of the thread system
/// (TCB free list and the execution context of whatever the processor is
/// doing; ready threads live in the runtime's [`crate::ready`] policy).
/// Slots outlive individual scheduler activations; the activation
/// currently animating a slot is `active_vp`.
pub(crate) struct Slot {
    /// The VP (kernel thread index or activation id) currently bound here.
    pub active_vp: Option<sa_kernel::VpId>,
    /// Thread loaded on this processor.
    pub current: Option<UtId>,
    /// Per-processor unlocked TCB free list ([Anderson et al. 89]).
    pub free_tcbs: Vec<UtId>,
    /// Slot-level (non-thread) pending micro-work: upcall processing,
    /// dispatch overhead.
    pub cont: VecDeque<RtMicro>,
    /// Upcall events awaiting processing.
    pub tasks: VecDeque<sa_kernel::UpcallEvent>,
    /// What the VP is spinning on, if spinning.
    pub spin: Option<SpinCtx>,
    /// Outcome routing for an in-flight syscall.
    pub awaiting: Option<Awaiting>,
    /// Thread being continued through its critical section (§3.3).
    pub recovering: Option<UtId>,
    /// When the current recovery started (for the recovery-time histogram).
    pub recovering_since: Option<SimTime>,
    /// The idle hysteresis burn has been done since the VP last idled.
    pub hysteresis_done: bool,
    /// The kernel has been told this processor is idle.
    pub idle_hinted: bool,
}

impl Slot {
    pub(crate) fn new() -> Self {
        Slot {
            active_vp: None,
            current: None,
            free_tcbs: Vec::new(),
            cont: VecDeque::new(),
            tasks: VecDeque::new(),
            spin: None,
            awaiting: None,
            recovering: None,
            recovering_since: None,
            hysteresis_done: false,
            idle_hinted: false,
        }
    }
}

/// Builds a [`VpSeg`] with a packed cookie.
pub(crate) fn seg(
    dur: SimDuration,
    kind: WorkKind,
    tag: cookie::Tag,
    t: Option<UtId>,
    critical: bool,
) -> VpSeg {
    VpSeg {
        dur,
        cookie: cookie::pack(tag, t, critical),
        kind,
    }
}

/// Convenience alias used throughout the runtime.
pub(crate) type KernelCall = Syscall;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cookie_round_trip() {
        let c = cookie::pack(cookie::Tag::Dispatch, Some(UtId(41)), true);
        let (tag, t, crit) = cookie::unpack(c);
        assert_eq!(tag, cookie::Tag::Dispatch);
        assert_eq!(t, Some(UtId(41)));
        assert!(crit);
    }

    #[test]
    fn cookie_no_thread() {
        let c = cookie::pack(cookie::Tag::Idle, None, false);
        let (tag, t, crit) = cookie::unpack(c);
        assert_eq!(tag, cookie::Tag::Idle);
        assert_eq!(t, None);
        assert!(!crit);
    }

    #[test]
    fn tcb_reinit_resets() {
        let mut tcbs = TcbStore::default();
        let t = tcbs.push_free();
        tcbs.hot[t.index()].locks_held = 3;
        tcbs.hot[t.index()].exited = true;
        tcbs.hot[t.index()].state = UtState::Free;
        tcbs.reinit(t, Box::new(sa_machine::ComputeBody::null()));
        assert_eq!(tcbs.hot[t.index()].state, UtState::Ready);
        assert_eq!(tcbs.hot[t.index()].locks_held, 0);
        assert!(!tcbs.hot[t.index()].exited);
        assert!(tcbs.cold[t.index()].body.is_some());
    }

    #[test]
    fn hot_rows_stay_small() {
        // The ≤256-hot-bytes-per-thread budget with generous headroom.
        assert!(core::mem::size_of::<UtHot>() <= 48);
    }

    #[test]
    fn utid_ref_round_trip() {
        let t = UtId(7);
        assert_eq!(UtId::from_ref(t.as_ref()), t);
    }
}
