#![warn(missing_docs)]
//! # sa-uthread: the FastThreads-like user-level thread package
//!
//! One runtime, two substrates:
//!
//! - [`FtConfig::kernel_threads`] — **original FastThreads**: virtual
//!   processors are kernel threads, scheduled obliviously by the kernel,
//!   with all of §2.2's integration problems (lost processors on I/O,
//!   spin-waste under preemption, idle VPs invisible to the kernel).
//! - [`FtConfig::scheduler_activations`] — **new FastThreads**: the
//!   paper's system, processing Table 2 upcalls, issuing Table 3 hints,
//!   recovering preempted critical sections (§3.3) and bulk-recycling
//!   activations (§4.3).
//!
//! Application code (thread bodies) is identical under both; only the
//! integration with the kernel differs — which is the paper's point.

pub mod config;
pub mod ready;
pub mod runtime;
pub mod stats;
pub mod sync;
pub mod types;

pub use config::{CriticalSectionMode, FtConfig, Substrate};
pub use ready::{GlobalFifo, GlobalLifo, LocalLifo, Pick, ReadyPolicy, ReadyPolicyKind};
pub use runtime::FastThreads;
pub use stats::FtStats;
pub use sync::SpinPolicy;
pub use types::{UtId, UtState};
