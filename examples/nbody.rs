//! The paper's §5.3 application: a Barnes-Hut N-body simulation with an
//! application-managed buffer cache, run under the three systems of
//! Figures 1 and 2.
//!
//! ```sh
//! cargo run --release --example nbody [memory_percent]
//! ```
//!
//! With `memory_percent < 100`, buffer-cache misses block in the kernel
//! for 50 ms and the integration differences between the systems dominate
//! (Figure 2); at 100 the differences are pure thread-management overhead
//! (Figure 1's 6-processor points).

use scheduler_activations::experiments::{nbody_run, nbody_sequential_time};
use scheduler_activations::machine::CostModel;
use scheduler_activations::scenario::systems;
use scheduler_activations::workload::nbody::NBodyConfig;

fn main() {
    let percent: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100.0);
    let cfg = NBodyConfig {
        memory_fraction: percent / 100.0,
        ..NBodyConfig::default()
    };
    let cost = CostModel::firefly_prototype();
    println!(
        "Barnes-Hut: {} bodies, {} steps, theta {}, {}% memory, 6 CPUs\n",
        cfg.bodies, cfg.steps, cfg.theta, percent
    );
    let seq = nbody_sequential_time(cfg.clone(), cost.clone(), 1);
    println!(
        "{:<20} {:>10}   (baseline, 1 CPU, no threads)",
        "sequential",
        format!("{seq}")
    );
    for (name, api) in systems(6) {
        let r = nbody_run(api, 6, cfg.clone(), cost.clone(), 1, 1);
        let speedup = seq.as_nanos() as f64 / r.elapsed.as_nanos() as f64;
        println!(
            "{:<20} {:>10}   speedup {speedup:>5.2}   cache misses {}",
            name,
            format!("{}", r.elapsed),
            r.cache_misses
        );
    }
}
