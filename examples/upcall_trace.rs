//! Watch Table 2 happen: trace every upcall the kernel makes while a
//! small application blocks in the kernel and is preempted.
//!
//! ```sh
//! cargo run --example upcall_trace
//! ```

use scheduler_activations::machine::program::{FnBody, Op, OpResult};
use scheduler_activations::machine::ComputeBody;
use scheduler_activations::sim::{SimDuration, Trace, TraceEvent};
use scheduler_activations::{AppSpec, SystemBuilder, ThreadApi};

fn main() {
    // Main forks an I/O thread, computes while it blocks, then joins —
    // exercising Blocked, Unblocked and the combined Unblocked+Preempted
    // upcall on a uniprocessor.
    let mut st = 0;
    let mut child = None;
    let main = FnBody::new("main", move |env| {
        if let OpResult::Forked(c) = env.last {
            child = Some(c);
        }
        st += 1;
        match st {
            1 => Op::Fork(Box::new(FnBody::new("io-thread", {
                let mut k = 0;
                move |_| {
                    k += 1;
                    if k == 1 {
                        Op::Io(SimDuration::from_millis(20))
                    } else {
                        Op::Exit
                    }
                }
            }))),
            2 => Op::Yield, // let the I/O thread start its request
            3 => Op::Compute(SimDuration::from_millis(40)),
            4 => Op::Join(child.expect("forked")),
            _ => Op::Exit,
        }
    });
    let mut sys = SystemBuilder::new(1)
        .trace(Trace::bounded(256))
        .app(AppSpec::new(
            "traced",
            ThreadApi::SchedulerActivations { max_processors: 1 },
            Box::new(main),
        ))
        .build();
    let report = sys.run();
    assert!(report.all_done());
    println!("kernel events on a 1-CPU machine (Table 2 in action):\n");
    for r in sys.kernel().trace().records() {
        if matches!(
            r.event,
            TraceEvent::Upcall { .. }
                | TraceEvent::ActStop { .. }
                | TraceEvent::Grant { .. }
                | TraceEvent::DesiredProcessors { .. }
                | TraceEvent::ProcessorIdle { .. }
        ) {
            println!("[{:>12}] {:<18} {}", format!("{}", r.at), r.tag(), r.event);
        }
    }
    println!("\ntotal: {}", report.elapsed(0));
    println!(
        "note the combined upcall when the I/O completes: the kernel must\n\
         preempt the only processor to deliver the Unblocked notification,\n\
         so one upcall carries both events (paper §3.1)."
    );
    let _ = ComputeBody::null();
}
