//! Thread priorities and §3.1's priority preemption.
//!
//! "No high-priority thread waits for a processor while a low-priority
//! thread runs" is one of the paper's functionality goals. With
//! `priority_scheduling` on, FastThreads picks the highest-priority
//! runnable thread, and when a high-priority thread becomes runnable
//! while every processor runs lower-priority work, the runtime *asks the
//! kernel to interrupt one of its own processors* — which arrives back as
//! a `Preempted` upcall carrying the interrupted thread's state.
//!
//! ```sh
//! cargo run --example priorities
//! ```

use scheduler_activations::machine::program::{FnBody, Op, OpResult, ThreadBody};
use scheduler_activations::machine::ThreadRef;
use scheduler_activations::sim::{SimDuration, Trace, TraceEvent};
use scheduler_activations::{AppSpec, SystemBuilder, ThreadApi};
use std::cell::RefCell;
use std::rc::Rc;

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

type Log = Rc<RefCell<Vec<String>>>;

fn worker(log: Log, tag: &'static str, work: SimDuration) -> Box<dyn ThreadBody> {
    let mut st = 0;
    Box::new(FnBody::new("worker", move |env| {
        st += 1;
        match st {
            1 => Op::Compute(work),
            _ => {
                log.borrow_mut().push(format!("{tag} done at {}", env.now));
                Op::Exit
            }
        }
    }))
}

fn main() {
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    let (l1, l2, lh) = (Rc::clone(&log), Rc::clone(&log), Rc::clone(&log));
    let mut st = 0;
    let mut children: Vec<ThreadRef> = Vec::new();
    let main_body = FnBody::new("main", move |env| {
        if let OpResult::Forked(c) = env.last {
            children.push(c);
        }
        st += 1;
        match st {
            // Two long, low-priority background threads.
            1 => Op::ForkPrio(worker(Rc::clone(&l1), "background-1 (prio 1)", ms(40)), 1),
            2 => Op::ForkPrio(worker(Rc::clone(&l2), "background-2 (prio 1)", ms(40)), 1),
            // Give the allocator time to spin up the second processor.
            3 => Op::Compute(ms(5)),
            // An urgent task arrives: the runtime preempts a background
            // thread's processor for it.
            4 => Op::ForkPrio(worker(Rc::clone(&lh), "URGENT (prio 9)   ", ms(3)), 9),
            5 => Op::Join(children[2]),
            6 => Op::Join(children[0]),
            7 => Op::Join(children[1]),
            _ => Op::Exit,
        }
    });
    let mut app = AppSpec::new(
        "prio-demo",
        ThreadApi::SchedulerActivations { max_processors: 2 },
        Box::new(main_body),
    );
    app.priority_scheduling = true;
    let mut sys = SystemBuilder::new(2)
        .trace(Trace::bounded(128))
        .app(app)
        .build();
    let report = sys.run();
    assert!(report.all_done());
    println!("completion order on 2 fully-busy CPUs:\n");
    for line in log.borrow().iter() {
        println!("  {line}");
    }
    println!("\nkernel events behind it:");
    for r in sys.kernel().trace().records() {
        if matches!(
            r.event,
            TraceEvent::ActStop { .. } | TraceEvent::Upcall { .. }
        ) {
            println!(
                "  [{:>10}] {:<16} {}",
                format!("{}", r.at),
                r.tag(),
                r.event
            );
        }
    }
    println!(
        "\nthe urgent thread finished first: its wake triggered a PreemptVp\n\
         call, the kernel stopped a background activation mid-computation,\n\
         and the Preempted upcall let the scheduler run the urgent thread\n\
         and re-queue the interrupted one — §3.1's priority rule."
    );
}
