//! Quickstart: run the same small parallel program under all four thread
//! systems the paper compares and print what each one cost.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use scheduler_activations::machine::program::{FnBody, Op, OpResult, ThreadBody};
use scheduler_activations::machine::ComputeBody;
use scheduler_activations::machine::ThreadRef;
use scheduler_activations::sim::SimDuration;
use scheduler_activations::{AppSpec, SystemBuilder, ThreadApi};

/// A little fork-join program: create 8 threads, each computing 2 ms,
/// then join them all. Written once; runs unchanged under every thread
/// system (§3: "the application programmer sees no difference, except
/// for performance, from programming directly with kernel threads").
fn fork_join_program() -> Box<dyn ThreadBody> {
    let mut handles: Vec<ThreadRef> = Vec::new();
    let mut forked = 0;
    let mut joined = 0;
    Box::new(FnBody::new("quickstart", move |env| {
        if let OpResult::Forked(h) = env.last {
            handles.push(h);
        }
        if forked < 8 {
            forked += 1;
            return Op::Fork(Box::new(ComputeBody::new(SimDuration::from_millis(2))));
        }
        if joined < handles.len() {
            let h = handles[joined];
            joined += 1;
            return Op::Join(h);
        }
        Op::Exit
    }))
}

fn main() {
    println!("8 threads x 2 ms of work on a 4-CPU machine:\n");
    let systems: Vec<(&str, ThreadApi)> = vec![
        ("Ultrix-style processes", ThreadApi::UltrixProcesses),
        ("Topaz kernel threads", ThreadApi::TopazThreads),
        (
            "original FastThreads",
            ThreadApi::OrigFastThreads { vps: 4 },
        ),
        (
            "FastThreads on scheduler activations",
            ThreadApi::SchedulerActivations { max_processors: 4 },
        ),
    ];
    for (name, api) in systems {
        let mut sys = SystemBuilder::new(4)
            .app(AppSpec::new(name, api, fork_join_program()))
            .build();
        let report = sys.run();
        assert!(report.all_done(), "{name} did not finish");
        let m = sys.metrics(sys.apps()[0]);
        println!(
            "{name:<38} {:>10}   ({} kernel traps)",
            format!("{}", report.elapsed(0)),
            m.traps.get()
        );
    }
    println!(
        "\nIdeal would be 4 ms (8 x 2 ms on 4 CPUs). The gap is thread\n\
         management: kernel-thread systems trap on every operation, the\n\
         user-level systems almost never do (Table 1/4 of the paper)."
    );
}
