//! Table 5's experiment: two copies of the N-body application competing
//! for six processors. Under the native kernel the copies time-slice
//! obliviously; under the modified kernel the processor allocator
//! space-shares, and scheduler activations keep the user-level schedulers
//! informed.
//!
//! ```sh
//! cargo run --release --example multiprogramming
//! ```

use scheduler_activations::experiments::{nbody_run, nbody_sequential_time};
use scheduler_activations::machine::CostModel;
use scheduler_activations::scenario::systems;
use scheduler_activations::workload::nbody::NBodyConfig;

fn main() {
    let cfg = NBodyConfig::default();
    let cost = CostModel::firefly_prototype();
    let seq = nbody_sequential_time(cfg.clone(), cost.clone(), 1);
    println!("two N-body copies at once on 6 CPUs (sequential baseline {seq})");
    println!("a speedup of 3.0 is the best either copy could possibly get\n");
    for (name, api) in systems(6) {
        let r = nbody_run(api, 6, cfg.clone(), cost.clone(), 2, 1);
        let speedup = seq.as_nanos() as f64 / r.elapsed.as_nanos() as f64;
        println!("{name:<20} mean speedup {speedup:.2}");
    }
    println!(
        "\nThe paper's Table 5: Topaz 1.29, orig FastThreads 1.26, new\n\
         FastThreads 2.45 — only the scheduler-activation system divides\n\
         the machine without destroying either copy's scheduling."
    );
}
