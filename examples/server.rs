//! Request latency under the three thread systems: a listener forks a
//! handler per request; handlers block in the kernel for device I/O in
//! the middle of a request.
//!
//! ```sh
//! cargo run --release --example server
//! ```
//!
//! The response-time *tail* tells the integration story: original
//! FastThreads loses a physical processor for every in-flight I/O (late
//! requests queue behind lost processors), Topaz pays kernel thread
//! management on every request, and scheduler activations keep both the
//! cheap operations and the processors.

use scheduler_activations::machine::CostModel;
use scheduler_activations::workload::server::{server, ServerConfig};
use scheduler_activations::{AppSpec, SystemBuilder, ThreadApi};

fn main() {
    println!("400 requests, ~1.6 ms apart; 30% block 10 ms in the kernel; 2 CPUs\n");
    println!("{:<44} {:>9} {:>9} {:>9}", "system", "p50", "p99", "max");
    let systems: Vec<(&str, ThreadApi, CostModel)> = vec![
        (
            "Topaz kernel threads",
            ThreadApi::TopazThreads,
            CostModel::firefly_prototype(),
        ),
        (
            "original FastThreads",
            ThreadApi::OrigFastThreads { vps: 2 },
            CostModel::firefly_prototype(),
        ),
        (
            "FastThreads on sched. activations (proto)",
            ThreadApi::SchedulerActivations { max_processors: 2 },
            CostModel::firefly_prototype(),
        ),
        (
            "FastThreads on sched. activations (tuned)",
            ThreadApi::SchedulerActivations { max_processors: 2 },
            CostModel::tuned(),
        ),
    ];
    for (name, api, cost) in systems {
        let (body, stats) = server(ServerConfig::default());
        let mut sys = SystemBuilder::new(2)
            .cost(cost)
            .app(AppSpec::new(name, api, body))
            .build();
        let report = sys.run();
        assert!(report.all_done(), "{name}: {:?}", report.outcome);
        let h = stats.response_times();
        println!(
            "{:<44} {:>9} {:>9} {:>9}",
            name,
            format!("{}", h.quantile(0.5)),
            format!("{}", h.quantile(0.99)),
            format!("{}", h.max())
        );
    }
    println!(
        "\noriginal FastThreads queues catastrophically: every in-flight I/O\n\
         takes a physical processor with it. The prototype's ~2.4 ms upcall\n\
         path taxes the activation system per I/O; the paper's projected\n\
         tuned path (last row) removes that tax."
    );
}
