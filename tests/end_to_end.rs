//! Workspace-level end-to-end tests: the headline results of the paper as
//! assertions, run through the top-level crate's public API.

use scheduler_activations::experiments::{
    nbody_run, nbody_sequential_time, thread_op_latencies, topaz_signal_wait, upcall_signal_wait,
};
use scheduler_activations::machine::CostModel;
use scheduler_activations::uthread::CriticalSectionMode;
use scheduler_activations::workload::nbody::NBodyConfig;
use scheduler_activations::ThreadApi;

fn pct_of(measured: f64, paper: f64) -> f64 {
    (measured - paper).abs() / paper * 100.0
}

#[test]
fn table1_and_table4_latencies_match_the_paper() {
    let cost = CostModel::firefly_prototype();
    // (api, critical mode, paper NullFork, paper SignalWait)
    let rows: Vec<(ThreadApi, CriticalSectionMode, f64, f64)> = vec![
        (
            ThreadApi::OrigFastThreads { vps: 1 },
            CriticalSectionMode::ZeroOverhead,
            34.0,
            37.0,
        ),
        (
            ThreadApi::SchedulerActivations { max_processors: 1 },
            CriticalSectionMode::ZeroOverhead,
            37.0,
            42.0,
        ),
        (
            ThreadApi::SchedulerActivations { max_processors: 1 },
            CriticalSectionMode::ExplicitFlag,
            49.0,
            48.0,
        ),
        (
            ThreadApi::TopazThreads,
            CriticalSectionMode::ZeroOverhead,
            948.0,
            441.0,
        ),
        (
            ThreadApi::UltrixProcesses,
            CriticalSectionMode::ZeroOverhead,
            11300.0,
            1840.0,
        ),
    ];
    for (api, critical, nf, sw) in rows {
        let r = thread_op_latencies(api.clone(), cost.clone(), critical);
        assert!(
            pct_of(r.null_fork.as_micros_f64(), nf) < 5.0,
            "{api:?} Null Fork {} vs paper {nf}",
            r.null_fork
        );
        assert!(
            pct_of(r.signal_wait.as_micros_f64(), sw) < 5.0,
            "{api:?} Signal-Wait {} vs paper {sw}",
            r.signal_wait
        );
    }
}

#[test]
fn upcall_performance_matches_section_5_2() {
    let proto = upcall_signal_wait(CostModel::firefly_prototype());
    let topaz = topaz_signal_wait(CostModel::firefly_prototype());
    // "The signal-wait time is 2.4 milliseconds, a factor of five worse
    // than Topaz threads."
    assert!(
        pct_of(proto.as_micros_f64(), 2400.0) < 10.0,
        "prototype upcall signal-wait {proto}"
    );
    let ratio = proto.as_micros_f64() / topaz.as_micros_f64();
    assert!(
        (4.0..7.0).contains(&ratio),
        "prototype/Topaz ratio {ratio:.1}, paper ~5"
    );
    // A tuned implementation is commensurate with Topaz kernel threads.
    let tuned = upcall_signal_wait(CostModel::tuned());
    assert!(
        tuned.as_micros_f64() < 1.5 * topaz.as_micros_f64(),
        "tuned upcall {tuned} not commensurate with Topaz {topaz}"
    );
}

#[test]
fn figure1_shape_holds_at_six_processors() {
    let cost = CostModel::firefly_prototype();
    let cfg = NBodyConfig::default();
    let seq = nbody_sequential_time(cfg.clone(), cost.clone(), 1);
    let speedup = |api: ThreadApi, machine: u16| {
        let r = nbody_run(api, machine, cfg.clone(), cost.clone(), 1, 1);
        seq.as_nanos() as f64 / r.elapsed.as_nanos() as f64
    };
    // One processor: everything below the sequential baseline.
    let topaz1 = speedup(ThreadApi::TopazThreads, 1);
    let ft1 = speedup(ThreadApi::OrigFastThreads { vps: 1 }, 6);
    let sa1 = speedup(ThreadApi::SchedulerActivations { max_processors: 1 }, 6);
    assert!(topaz1 < 1.0 && ft1 < 1.0 && sa1 < 1.0);
    assert!(topaz1 < ft1, "Topaz overhead not visible at 1 cpu");
    // Six processors: the user-level systems sit far above Topaz, which
    // flattens out (paper: ~2-2.5 vs near-linear).
    let topaz6 = speedup(ThreadApi::TopazThreads, 6);
    let ft6 = speedup(ThreadApi::OrigFastThreads { vps: 6 }, 6);
    let sa6 = speedup(ThreadApi::SchedulerActivations { max_processors: 6 }, 6);
    assert!(topaz6 < 3.3, "Topaz did not flatten: {topaz6:.2}");
    assert!(ft6 > 3.7, "orig FastThreads too slow: {ft6:.2}");
    assert!(sa6 > 3.7, "new FastThreads too slow: {sa6:.2}");
    assert!(
        ft6 > topaz6 + 1.0 && sa6 > topaz6 + 1.0,
        "user-level systems not clearly above Topaz: {ft6:.2}/{sa6:.2} vs {topaz6:.2}"
    );
}

#[test]
fn figure2_shape_orig_fastthreads_degrades_fastest() {
    let cost = CostModel::firefly_prototype();
    let run = |api: ThreadApi, frac: f64| {
        let cfg = NBodyConfig {
            memory_fraction: frac,
            ..NBodyConfig::default()
        };
        nbody_run(api, 6, cfg, cost.clone(), 1, 1).elapsed
    };
    let orig_full = run(ThreadApi::OrigFastThreads { vps: 6 }, 1.0);
    let orig_low = run(ThreadApi::OrigFastThreads { vps: 6 }, 0.5);
    let sa_full = run(ThreadApi::SchedulerActivations { max_processors: 6 }, 1.0);
    let sa_low = run(ThreadApi::SchedulerActivations { max_processors: 6 }, 0.5);
    let topaz_low = run(ThreadApi::TopazThreads, 0.5);
    // Original FastThreads loses a physical processor for every blocked
    // thread; its degradation dwarfs the others'.
    let orig_slowdown = orig_low.as_nanos() as f64 / orig_full.as_nanos() as f64;
    let sa_slowdown = sa_low.as_nanos() as f64 / sa_full.as_nanos() as f64;
    assert!(
        orig_slowdown > 3.0 * sa_slowdown,
        "orig {orig_slowdown:.1}x vs sa {sa_slowdown:.1}x"
    );
    // The overlapping systems stay within a small factor of each other.
    let ratio = sa_low.as_nanos() as f64 / topaz_low.as_nanos() as f64;
    assert!(
        (0.4..1.6).contains(&ratio),
        "new FastThreads vs Topaz at 50%: {ratio:.2}"
    );
}

#[test]
fn table5_multiprogramming_shape() {
    let cost = CostModel::firefly_prototype();
    let cfg = NBodyConfig::default();
    let seq = nbody_sequential_time(cfg.clone(), cost.clone(), 1);
    let speedup = |api: ThreadApi| {
        let r = nbody_run(api, 6, cfg.clone(), cost.clone(), 2, 1);
        seq.as_nanos() as f64 / r.elapsed.as_nanos() as f64
    };
    let topaz = speedup(ThreadApi::TopazThreads);
    let orig = speedup(ThreadApi::OrigFastThreads { vps: 6 });
    let sa = speedup(ThreadApi::SchedulerActivations { max_processors: 6 });
    // Paper: 1.29 / 1.26 / 2.45 of a maximum 3. The ordering and the
    // big SA gap are the result; exact values are calibration.
    assert!(sa > 2.2, "new FastThreads multiprogrammed speedup {sa:.2}");
    assert!(sa > orig + 0.6, "SA {sa:.2} vs orig {orig:.2}");
    assert!(sa > topaz + 0.6, "SA {sa:.2} vs topaz {topaz:.2}");
    assert!(topaz < 2.2 && orig < 2.2);
    assert!(sa <= 3.0 + 1e-9);
}
